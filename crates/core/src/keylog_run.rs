//! Keylogging scenario runner: type text, record EM, detect, score.

use emsc_keylog::burst::BurstModel;
use emsc_keylog::detect::{
    detected_times, score_detections, DetectionReport, DetectionScore, Detector, DetectorConfig,
};
use emsc_keylog::typist::{Keystroke, Typist};
use emsc_keylog::words::{group_words, score_words, word_lengths, WordScore};
use emsc_pmu::sim::ExternalEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::chain::{Chain, ChainRun};

/// Detection-to-truth matching tolerance, seconds.
pub const MATCH_TOLERANCE_S: f64 = 0.06;
/// Idle margin before the first and after the last keystroke, seconds.
pub const IDLE_MARGIN_S: f64 = 0.5;
/// Word-boundary gap factor (× median inter-keystroke gap).
pub const WORD_GAP_FACTOR: f64 = 1.6;

/// A complete keylogging run and its scoring.
#[derive(Debug, Clone)]
pub struct KeylogOutcome {
    /// Ground-truth keystrokes.
    pub keystrokes: Vec<Keystroke>,
    /// The detector's full report.
    pub detection: DetectionReport,
    /// Character-level score (Table IV, TPR/FPR columns).
    pub chars: DetectionScore,
    /// Word-level score (Table IV, precision/recall columns).
    pub words: WordScore,
    /// Every intermediate chain stage.
    pub chain_run: ChainRun,
}

/// Runs keylogging over a chain.
#[derive(Debug, Clone)]
pub struct KeylogScenario {
    /// The physical chain.
    pub chain: Chain,
    /// The victim's typing behaviour.
    pub typist: Typist,
    /// Keystroke → CPU burst mapping.
    pub bursts: BurstModel,
    /// The attacker's detector.
    pub detector: DetectorConfig,
}

impl KeylogScenario {
    /// The paper's setup: average typist typing into a browser,
    /// detector tuned to the chain's VRM band.
    pub fn standard(chain: Chain) -> Self {
        let detector = DetectorConfig::new(chain.switching_freq_hz());
        KeylogScenario { chain, typist: Typist::default(), bursts: BurstModel::browser(), detector }
    }

    /// Types `text` while the capture runs, then detects and scores.
    pub fn run(&self, text: &str, seed: u64) -> KeylogOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let keystrokes = self.typist.type_text(text, IDLE_MARGIN_S, &mut rng);
        let end = keystrokes.last().map_or(IDLE_MARGIN_S, |k| k.release_s) + IDLE_MARGIN_S;
        let events = self.bursts.events_for(&keystrokes, end, &mut rng);
        let chain_run = self.chain.run_events(end, &events, seed);

        let detector = Detector::new(self.detector.clone());
        let detection = detector.detect(&chain_run.capture);

        let truth: Vec<f64> = keystrokes.iter().map(|k| k.press_s).collect();
        let chars = score_detections(&detection.bursts, &truth, MATCH_TOLERANCE_S);

        let times = detected_times(&detection);
        let groups = group_words(&times, WORD_GAP_FACTOR);
        let words = score_words(&word_lengths(&groups), text);

        KeylogOutcome { keystrokes, detection, chars, words, chain_run }
    }

    /// Like [`KeylogScenario::run`], but processes the capture in
    /// chunks of roughly `chunk_s` seconds so minute-long typing
    /// sessions don't materialise gigabytes of I/Q at once. Per-chunk
    /// window energies are concatenated and thresholded globally, so
    /// the result matches a monolithic run up to chunk-boundary
    /// alignment. Returns the outcome *without* the chain intermediates
    /// (they would be the gigabytes we avoided).
    ///
    /// Each chunk's seed is `seed ^ (chunk_idx << 17)` — a function of
    /// the chunk's *position*, not of execution order — so the chunks
    /// are independent and fan out across the worker pool while the
    /// concatenated energy series stays bit-identical to a serial run.
    pub fn run_chunked(&self, text: &str, seed: u64, chunk_s: f64) -> ChunkedKeylogOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let keystrokes = self.typist.type_text(text, IDLE_MARGIN_S, &mut rng);
        let end = keystrokes.last().map_or(IDLE_MARGIN_S, |k| k.release_s) + IDLE_MARGIN_S;
        let events = self.bursts.events_for(&keystrokes, end, &mut rng);

        let fs = self.chain.scene.synth.sample_rate;
        let window = self.detector.window_samples;
        // Chunk length: a whole number of detector windows, so the
        // concatenated energies stay on one grid.
        let windows_per_chunk = ((chunk_s * fs / window as f64).ceil() as usize).max(1);
        let chunk_samples = windows_per_chunk * window;
        let chunk_dur = chunk_samples as f64 / fs;

        let n_chunks = (end / chunk_dur).ceil().max(1.0) as u64;
        let chunk_ids: Vec<u64> = (0..n_chunks).collect();
        let chunk_energies = emsc_runtime::par_map(&chunk_ids, |&chunk_idx| {
            let t0 = chunk_idx as f64 * chunk_dur;
            let t1 = (t0 + chunk_dur).min(end);
            // Events that *start* in this chunk, rebased to its origin.
            let chunk_events: Vec<ExternalEvent> = events
                .iter()
                .filter(|e| e.t_s >= t0 && e.t_s < t1)
                .map(|e| ExternalEvent { t_s: e.t_s - t0, ..*e })
                .collect();
            let mut run = self.chain.run_events(chunk_dur, &chunk_events, seed ^ (chunk_idx << 17));
            run.capture.samples.truncate(chunk_samples);
            Detector::new(self.detector.clone()).window_energies(&run.capture)
        });
        let energies: Vec<f64> = chunk_energies.into_iter().flatten().collect();

        let detector = Detector::new(self.detector.clone());
        let window_s = window as f64 / fs;
        let detection = detector.detect_from_energies(energies, window_s);
        let truth: Vec<f64> = keystrokes.iter().map(|k| k.press_s).collect();
        let chars = score_detections(&detection.bursts, &truth, MATCH_TOLERANCE_S);
        let times = detected_times(&detection);
        let groups = group_words(&times, WORD_GAP_FACTOR);
        let words = score_words(&word_lengths(&groups), text);
        ChunkedKeylogOutcome { keystrokes, detection, chars, words }
    }
}

/// Output of [`KeylogScenario::run_chunked`]: the scoring without the
/// (large) chain intermediates.
#[derive(Debug, Clone)]
pub struct ChunkedKeylogOutcome {
    /// Ground-truth keystrokes.
    pub keystrokes: Vec<Keystroke>,
    /// The detector's report.
    pub detection: DetectionReport,
    /// Character-level score.
    pub chars: DetectionScore,
    /// Word-level score.
    pub words: WordScore,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Setup;
    use crate::laptop::Laptop;

    #[test]
    fn near_field_keylogging_detects_most_keystrokes() {
        let laptop = Laptop::dell_precision(); // the paper's §V laptop
        let chain = Chain::new(&laptop, Setup::NearField);
        let scenario = KeylogScenario::standard(chain);
        let outcome = scenario.run("can you hear me", 7);
        assert_eq!(outcome.keystrokes.len(), 15);
        assert!(
            outcome.chars.tpr() > 0.9,
            "TPR {} (tp {} fp {} missed {})",
            outcome.chars.tpr(),
            outcome.chars.true_positives,
            outcome.chars.false_positives,
            outcome.chars.missed
        );
        assert!(outcome.chars.fpr() < 0.25, "FPR {}", outcome.chars.fpr());
    }

    #[test]
    fn chunked_run_matches_monolithic_scores() {
        let laptop = Laptop::dell_precision();
        let chain = Chain::new(&laptop, Setup::NearField);
        let scenario = KeylogScenario::standard(chain);
        let text = "chunk test words";
        let whole = scenario.run(text, 19);
        let chunked = scenario.run_chunked(text, 19, 1.0);
        // Same ground truth, near-identical detection quality.
        assert_eq!(whole.keystrokes.len(), chunked.keystrokes.len());
        assert!(
            (whole.chars.tpr() - chunked.chars.tpr()).abs() < 0.15,
            "whole {} vs chunked {}",
            whole.chars.tpr(),
            chunked.chars.tpr()
        );
    }

    #[test]
    fn word_grouping_recovers_word_count() {
        let laptop = Laptop::dell_precision();
        let chain = Chain::new(&laptop, Setup::NearField);
        let scenario = KeylogScenario::standard(chain);
        let outcome = scenario.run("hello there friend", 21);
        // 3 words; predicted count within ±1.
        assert!(
            (outcome.words.predicted as i64 - 3).unsigned_abs() <= 1,
            "predicted {} words",
            outcome.words.predicted
        );
        assert!(outcome.words.recall() > 0.6, "recall {}", outcome.words.recall());
    }
}
