//! Countermeasures against the PMU side channel (§III and §VI).
//!
//! The paper's §III BIOS experiment: disabling *either* C-states or
//! P-states leaves the channel alive (the processor can still switch
//! between one high- and one low-power state); disabling *both* pins
//! the VRM in its high-power mode and the spikes become constant —
//! no modulation, no channel. §VI additionally proposes randomising
//! the VRM's operation and conventional EMI shielding.

use emsc_pmu::governor::{CStatePolicy, DvfsPolicy};
use emsc_vrm::buck::PeriodRandomization;

use crate::chain::{BlinkingConfig, Chain};

/// A deployable mitigation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Countermeasure {
    /// BIOS: disable C-states (idle spins in C0).
    DisableCStates,
    /// BIOS: disable P-states (always nominal voltage/frequency).
    DisablePStates,
    /// BIOS: disable both — the §III configuration that kills the
    /// modulation entirely.
    DisableBoth,
    /// Circuit-level: randomise the VRM switching period by ±spread
    /// (§VI "adding pre-determinism, randomness, and/or noise to the
    /// operation of the PMU").
    RandomizeVrm {
        /// Relative period spread (0.2 = ±20 %).
        spread: f64,
    },
    /// EMI shielding: attenuates the emission by the given amount.
    Shielding {
        /// Shielding effectiveness, decibels.
        attenuation_db: f64,
    },
    /// Architecture blinking (§VI, Althoff et al. \[101\]): the core is
    /// periodically disconnected from the PMU and runs off stored
    /// charge, hiding its activity for `duty` of every `period_s`.
    Blinking {
        /// Blink scheduling period, seconds.
        period_s: f64,
        /// Fraction of time blinked (0–1).
        duty: f64,
    },
}

impl Countermeasure {
    /// Applies the countermeasure to a chain, returning the modified
    /// chain (the original is consumed; chains are cheap to clone).
    pub fn apply(self, mut chain: Chain) -> Chain {
        match self {
            Countermeasure::DisableCStates => {
                chain.machine.cstates = CStatePolicy::disabled();
            }
            Countermeasure::DisablePStates => {
                chain.machine.dvfs = DvfsPolicy::disabled();
            }
            Countermeasure::DisableBoth => {
                chain.machine.cstates = CStatePolicy::disabled();
                chain.machine.dvfs = DvfsPolicy::disabled();
            }
            Countermeasure::RandomizeVrm { spread } => {
                chain.vrm.randomization = Some(PeriodRandomization { spread, seed: 0x5EED });
            }
            Countermeasure::Shielding { attenuation_db } => {
                chain.scene.emission_scale *= 10f64.powf(-attenuation_db / 20.0);
            }
            Countermeasure::Blinking { period_s, duty } => {
                chain.blinking = Some(BlinkingConfig {
                    period_s,
                    duty,
                    // The decoupling capacitor is recharged at a steady
                    // mid-scale current.
                    level_a: 4.0,
                });
            }
        }
        chain
    }

    /// Human-readable label.
    pub fn label(self) -> String {
        match self {
            Countermeasure::DisableCStates => "C-states disabled".into(),
            Countermeasure::DisablePStates => "P-states disabled".into(),
            Countermeasure::DisableBoth => "C- and P-states disabled".into(),
            Countermeasure::RandomizeVrm { spread } => {
                format!("VRM period randomised ±{:.0} %", spread * 100.0)
            }
            Countermeasure::Shielding { attenuation_db } => {
                format!("EMI shielding {attenuation_db:.0} dB")
            }
            Countermeasure::Blinking { period_s, duty } => format!(
                "architecture blinking {:.0} % of every {:.1} ms",
                duty * 100.0,
                period_s * 1e3
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Setup;
    use crate::laptop::Laptop;

    fn chain() -> Chain {
        Chain::new(&Laptop::dell_inspiron(), Setup::NearField)
    }

    #[test]
    fn bios_switches_toggle_policies() {
        let c = Countermeasure::DisableCStates.apply(chain());
        assert!(!c.machine.cstates.enabled);
        assert!(c.machine.dvfs.enabled);

        let p = Countermeasure::DisablePStates.apply(chain());
        assert!(p.machine.cstates.enabled);
        assert!(!p.machine.dvfs.enabled);

        let both = Countermeasure::DisableBoth.apply(chain());
        assert!(!both.machine.cstates.enabled);
        assert!(!both.machine.dvfs.enabled);
    }

    #[test]
    fn vrm_randomization_is_installed() {
        let c = Countermeasure::RandomizeVrm { spread: 0.3 }.apply(chain());
        let r = c.vrm.randomization.expect("randomization installed");
        assert!((r.spread - 0.3).abs() < 1e-12);
    }

    #[test]
    fn shielding_attenuates_emission() {
        let base = chain().scene.emission_scale;
        let c = Countermeasure::Shielding { attenuation_db: 20.0 }.apply(chain());
        assert!((c.scene.emission_scale - base * 0.1).abs() < 1e-9);
    }

    #[test]
    fn blinking_is_installed_on_the_chain() {
        let c = Countermeasure::Blinking { period_s: 1e-3, duty: 0.5 }.apply(chain());
        let b = c.blinking.expect("blinking installed");
        assert!((b.duty - 0.5).abs() < 1e-12);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            Countermeasure::DisableCStates,
            Countermeasure::DisablePStates,
            Countermeasure::DisableBoth,
            Countermeasure::RandomizeVrm { spread: 0.2 },
            Countermeasure::Shielding { attenuation_db: 30.0 },
            Countermeasure::Blinking { period_s: 1e-3, duty: 0.5 },
        ]
        .iter()
        .map(|c| c.label())
        .collect();
        for (i, a) in labels.iter().enumerate() {
            for b in labels.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
