//! End-to-end reproduction of the HPCA 2020 PMU EM side-channel paper.
//!
//! This crate composes the substrates — [`emsc_pmu`] (CPU power
//! management), [`emsc_vrm`] (buck converter), [`emsc_emfield`] (EM
//! propagation), [`emsc_sdr`] (receiver/DSP), [`emsc_covert`] and
//! [`emsc_keylog`] (the two exploits) — into runnable scenarios:
//!
//! - [`laptop`]: the six Table I laptops as presets,
//! - [`chain`]: the full signal chain (program → … → I/Q capture),
//! - [`fused`]: the fused blockwise TX chain behind it (cache-resident
//!   synth→AWGN→digitise, streamable block by block),
//! - [`covert_run`]: covert-channel transfers with BER/IP/DP scoring,
//! - [`keylog_run`]: keylogging runs with TPR/FPR and word scoring,
//! - [`fingerprint_run`]: the §III website-fingerprinting extension,
//! - [`countermeasure`]: the §III/§VI mitigations,
//! - [`session`]: multi-tenant streaming capture sessions multiplexed
//!   over the worker pool,
//! - [`experiments`]: one function per paper table and figure.
//!
//! # Examples
//!
//! Exfiltrate a secret across the air gap and read it back:
//!
//! ```
//! use emsc_core::chain::{Chain, Setup};
//! use emsc_core::covert_run::CovertScenario;
//! use emsc_core::laptop::Laptop;
//!
//! let laptop = Laptop::dell_inspiron();
//! let chain = Chain::new(&laptop, Setup::NearField);
//! let scenario = CovertScenario::for_laptop(&laptop, chain);
//! let outcome = scenario.run(b"pw:hunter2", 7);
//! assert!(outcome.recovered(b"pw:hunter2"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod chain;
pub mod countermeasure;
pub mod covert_run;
pub mod experiments;
pub mod fingerprint_run;
pub mod fused;
pub mod keylog_run;
pub mod laptop;
pub mod session;

pub use chain::{Chain, ChainRun, Setup};
pub use countermeasure::Countermeasure;
pub use covert_run::{CovertOutcome, CovertScenario, CovertStreamedOutcome};
pub use fingerprint_run::{FingerprintOutcome, FingerprintScenario};
pub use fused::{ChainStream, FUSED_BLOCK};
pub use keylog_run::{KeylogOutcome, KeylogScenario};
pub use laptop::{Laptop, Microarch, Os};
pub use session::{
    ClosedSession, SessionError, SessionId, SessionOutput, SessionRegistry, SessionStats,
};
