//! Multi-tenant capture sessions: N concurrent streaming receivers
//! multiplexed over the `emsc-runtime` worker pool.
//!
//! A real deployment of the paper's attack tends to run *many* radios
//! at once — one SDR per victim machine, or one per monitored room for
//! the keylogging variant. [`SessionRegistry`] owns one resumable
//! state machine per stream (a covert-channel
//! [`StreamingReceiver`] or a keylogging [`StreamingDetector`]),
//! accepts I/Q chunks per session with bounded buffering, and drains
//! every session's backlog in parallel on [`emsc_runtime::par_map`].
//!
//! # Backpressure
//!
//! Each session buffers at most `buffer_limit` samples between pumps.
//! [`SessionRegistry::offer`] rejects (without consuming) any chunk
//! that would exceed the limit, returning
//! [`SessionError::RejectedFull`]; the producer pumps and retries.
//! This bounds registry memory to `sessions × buffer_limit` samples no
//! matter how bursty the producers are.
//!
//! # Determinism and isolation
//!
//! Sessions share no state, each session's samples are processed in
//! arrival order, and the streaming state machines are bit-identical
//! to their batch counterparts for *any* chunking — so the registry's
//! outputs are a pure function of each stream's content, independent
//! of thread count, pump cadence and the other tenants. A stream that
//! dies with a typed error ([`RxError`], [`DetectError`]) surfaces it
//! in its own [`SessionOutput`]; the other sessions are unaffected.

use std::sync::Mutex;

use emsc_covert::rx::{RxConfig, RxError, RxReport};
use emsc_covert::stream::StreamingReceiver;
use emsc_keylog::detect::{DetectError, DetectionReport, DetectorConfig};
use emsc_keylog::stream::StreamingDetector;
use emsc_runtime::{par_map, seed_for};
use emsc_sdr::iq::Complex;

/// Handle to one open stream inside a [`SessionRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(usize);

/// Registry-level failures (stream-level failures are carried inside
/// [`SessionOutput`] instead, so one bad stream cannot poison its
/// neighbours).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// No open session with that id (never opened, or already
    /// finished).
    UnknownSession,
    /// Accepting the chunk would exceed the per-session buffer limit;
    /// the chunk was **not** consumed. Pump and retry.
    RejectedFull {
        /// Samples already buffered for this session.
        buffered: usize,
        /// Samples in the rejected chunk.
        offered: usize,
        /// The per-session buffer limit.
        limit: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownSession => write!(f, "unknown or already-finished session"),
            SessionError::RejectedFull { buffered, offered, limit } => write!(
                f,
                "chunk rejected: {buffered} buffered + {offered} offered exceeds limit {limit}"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// Per-session counters, maintained across [`SessionRegistry::offer`]
/// and [`SessionRegistry::pump`] calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Seed derived for this stream at open time
    /// (`seed_for(base_seed, open_index)`).
    pub seed: u64,
    /// Chunks accepted by [`SessionRegistry::offer`].
    pub chunks_accepted: usize,
    /// Chunks rejected for backpressure.
    pub chunks_rejected: usize,
    /// Samples accepted into the buffer overall.
    pub samples_accepted: usize,
    /// Samples already pushed through the stream's state machine.
    pub samples_processed: usize,
    /// Samples currently buffered (accepted, not yet pumped).
    pub buffered: usize,
    /// Typed stream errors this session has surfaced (today a stream
    /// can fail at most once, at finish; the counter stays cumulative
    /// so callers aggregating rotated sessions can just add stats).
    pub stream_errors: usize,
    /// Kind label of the most recent stream error, e.g.
    /// `"rx-sync-lost"` (see [`SessionOutput::error_kind`]).
    pub last_error: Option<&'static str>,
}

/// Final product of a finished session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutput {
    /// A covert-channel stream: the demodulated report, or why the
    /// stream could not be demodulated.
    Covert(Result<RxReport, RxError>),
    /// A keylogging stream: the detection report, or why the stream
    /// was unusable.
    Keylog(Result<DetectionReport, DetectError>),
}

impl SessionOutput {
    /// Whether the stream ended in a typed error.
    pub fn is_err(&self) -> bool {
        matches!(self, SessionOutput::Covert(Err(_)) | SessionOutput::Keylog(Err(_)))
    }

    /// Whether the stream's error (if any) is worth a restart:
    /// delegates to [`RxError::is_retryable`] /
    /// [`DetectError::is_retryable`]. A successful stream returns
    /// `false` — there is nothing to retry.
    pub fn is_retryable_err(&self) -> bool {
        match self {
            SessionOutput::Covert(Err(e)) => e.is_retryable(),
            SessionOutput::Keylog(Err(e)) => e.is_retryable(),
            _ => false,
        }
    }

    /// Short static label of the stream's error kind, if it failed —
    /// the value recorded in [`SessionStats::last_error`] and coarse
    /// enough to aggregate across sessions (`"rx-capture"`,
    /// `"rx-no-carrier"`, `"rx-sync-lost"`, `"rx-config"`,
    /// `"keylog-capture"`, `"keylog-config"`).
    pub fn error_kind(&self) -> Option<&'static str> {
        match self {
            SessionOutput::Covert(Err(e)) => Some(match e {
                RxError::InvalidConfig(_) => "rx-config",
                RxError::Capture(_) => "rx-capture",
                RxError::NoCarrier => "rx-no-carrier",
                RxError::SyncLost(_) => "rx-sync-lost",
            }),
            SessionOutput::Keylog(Err(e)) => Some(match e {
                DetectError::InvalidConfig(_) => "keylog-config",
                DetectError::Capture(_) => "keylog-capture",
            }),
            _ => None,
        }
    }
}

/// A finished session: its output plus the final counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedSession {
    /// The stream's result.
    pub output: SessionOutput,
    /// Counters at close time.
    pub stats: SessionStats,
}

#[derive(Debug)]
enum StreamMachine {
    Covert(Box<StreamingReceiver>),
    Keylog(Box<StreamingDetector>),
}

impl StreamMachine {
    fn push(&mut self, chunk: &[Complex]) {
        match self {
            StreamMachine::Covert(rx) => {
                rx.push(chunk);
            }
            StreamMachine::Keylog(det) => {
                det.push(chunk);
            }
        }
    }

    fn finish(&mut self) -> SessionOutput {
        match self {
            StreamMachine::Covert(rx) => SessionOutput::Covert(rx.finish()),
            StreamMachine::Keylog(det) => SessionOutput::Keylog(det.finish()),
        }
    }
}

#[derive(Debug)]
struct Slot {
    machine: StreamMachine,
    buffer: Vec<Complex>,
    stats: SessionStats,
}

/// Owns and multiplexes N concurrent streaming sessions.
#[derive(Debug)]
pub struct SessionRegistry {
    base_seed: u64,
    buffer_limit: usize,
    slots: Vec<Option<Slot>>,
    opened: u64,
}

impl SessionRegistry {
    /// Creates a registry. Each stream opened later gets the seed
    /// `seed_for(base_seed, open_index)` (recorded in its stats, for
    /// callers that drive per-stream capture synthesis), and may
    /// buffer at most `buffer_limit` samples between pumps.
    pub fn new(base_seed: u64, buffer_limit: usize) -> Self {
        SessionRegistry { base_seed, buffer_limit, slots: Vec::new(), opened: 0 }
    }

    /// Open sessions right now.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The per-session buffer limit, in samples.
    pub fn buffer_limit(&self) -> usize {
        self.buffer_limit
    }

    /// Ids of every open session, in open order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| SessionId(i)))
            .collect()
    }

    fn admit(&mut self, machine: StreamMachine) -> SessionId {
        let seed = seed_for(self.base_seed, self.opened);
        self.opened += 1;
        let id = SessionId(self.slots.len());
        self.slots.push(Some(Slot {
            machine,
            buffer: Vec::new(),
            stats: SessionStats { seed, ..SessionStats::default() },
        }));
        id
    }

    /// Opens a covert-channel session (informed receiver).
    ///
    /// # Errors
    ///
    /// Propagates [`StreamingReceiver::new`]'s construction errors
    /// (bad config, bad sample rate, no carrier in the capture band).
    pub fn open_covert(
        &mut self,
        config: RxConfig,
        sample_rate: f64,
        center_freq: f64,
    ) -> Result<SessionId, RxError> {
        let rx = StreamingReceiver::new(config, sample_rate, center_freq)?;
        Ok(self.admit(StreamMachine::Covert(Box::new(rx))))
    }

    /// Opens a blind covert-channel session (bit period estimated from
    /// the stream at finish).
    ///
    /// # Errors
    ///
    /// As [`SessionRegistry::open_covert`].
    pub fn open_blind_covert(
        &mut self,
        config: RxConfig,
        sample_rate: f64,
        center_freq: f64,
    ) -> Result<SessionId, RxError> {
        let rx = StreamingReceiver::new_blind(config, sample_rate, center_freq)?;
        Ok(self.admit(StreamMachine::Covert(Box::new(rx))))
    }

    /// Opens a keylogging session.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamingDetector::new`]'s construction errors.
    pub fn open_keylog(
        &mut self,
        config: DetectorConfig,
        sample_rate: f64,
        center_freq: f64,
    ) -> Result<SessionId, DetectError> {
        let det = StreamingDetector::new(config, sample_rate, center_freq)?;
        Ok(self.admit(StreamMachine::Keylog(Box::new(det))))
    }

    /// Counters for an open session.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownSession`] for a closed or unknown id.
    pub fn stats(&self, id: SessionId) -> Result<SessionStats, SessionError> {
        self.slot(id).map(|s| s.stats)
    }

    /// Offers a chunk to a session's buffer without processing it.
    ///
    /// # Errors
    ///
    /// [`SessionError::RejectedFull`] when the chunk would exceed the
    /// buffer limit (the chunk is not consumed — pump and retry), or
    /// [`SessionError::UnknownSession`].
    pub fn offer(&mut self, id: SessionId, chunk: &[Complex]) -> Result<(), SessionError> {
        let limit = self.buffer_limit;
        let slot = self.slot_mut(id)?;
        if slot.buffer.len() + chunk.len() > limit {
            slot.stats.chunks_rejected += 1;
            return Err(SessionError::RejectedFull {
                buffered: slot.buffer.len(),
                offered: chunk.len(),
                limit,
            });
        }
        slot.buffer.extend_from_slice(chunk);
        slot.stats.chunks_accepted += 1;
        slot.stats.samples_accepted += chunk.len();
        slot.stats.buffered = slot.buffer.len();
        Ok(())
    }

    /// Drains every session's buffered samples through its state
    /// machine, fanning the sessions out across the worker pool.
    /// Returns the total number of samples processed.
    ///
    /// Each session's result is invariant to pump cadence and thread
    /// count: the state machines are chunk-invariant, and sessions
    /// share no state (each worker locks only its own slot).
    pub fn pump(&mut self) -> usize {
        let work: Vec<Mutex<&mut Slot>> = self
            .slots
            .iter_mut()
            .filter_map(|s| s.as_mut())
            .filter(|s| !s.buffer.is_empty())
            .map(Mutex::new)
            .collect();
        let counts = par_map(&work, |cell| {
            let mut slot = cell.lock().expect("session slot lock");
            let buffer = std::mem::take(&mut slot.buffer);
            slot.machine.push(&buffer);
            slot.stats.samples_processed += buffer.len();
            slot.stats.buffered = 0;
            buffer.len()
        });
        counts.iter().sum()
    }

    /// Flushes any remaining buffered samples, finalises the stream
    /// and closes the session. The stream's own failure (if any) is
    /// carried *inside* [`ClosedSession::output`]; other sessions are
    /// untouched either way.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownSession`] for a closed or unknown id.
    pub fn finish(&mut self, id: SessionId) -> Result<ClosedSession, SessionError> {
        let slot = self.slots.get_mut(id.0).ok_or(SessionError::UnknownSession)?;
        let mut slot = slot.take().ok_or(SessionError::UnknownSession)?;
        if !slot.buffer.is_empty() {
            let buffer = std::mem::take(&mut slot.buffer);
            slot.machine.push(&buffer);
            slot.stats.samples_processed += buffer.len();
            slot.stats.buffered = 0;
        }
        let output = slot.machine.finish();
        if let Some(kind) = output.error_kind() {
            slot.stats.stream_errors += 1;
            slot.stats.last_error = Some(kind);
        }
        Ok(ClosedSession { output, stats: slot.stats })
    }

    /// Abandons a session without finalising its stream: buffered
    /// samples are discarded and the state machine is dropped where it
    /// stands. This is the supervisor's restart/quarantine hook — a
    /// stalled or poisoned stream's half-built acquisition state is
    /// worthless, and running `finish` on it would waste a full decode
    /// only to produce a report nobody trusts. Returns the counters at
    /// abort time (with `buffered` still reflecting the discarded
    /// backlog, so callers can account for the loss).
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownSession`] for a closed or unknown id.
    pub fn abort(&mut self, id: SessionId) -> Result<SessionStats, SessionError> {
        let slot = self.slots.get_mut(id.0).ok_or(SessionError::UnknownSession)?;
        let slot = slot.take().ok_or(SessionError::UnknownSession)?;
        Ok(slot.stats)
    }

    fn slot(&self, id: SessionId) -> Result<&Slot, SessionError> {
        self.slots.get(id.0).and_then(|s| s.as_ref()).ok_or(SessionError::UnknownSession)
    }

    fn slot_mut(&mut self, id: SessionId) -> Result<&mut Slot, SessionError> {
        self.slots.get_mut(id.0).and_then(|s| s.as_mut()).ok_or(SessionError::UnknownSession)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{Chain, Setup};
    use crate::covert_run::CovertScenario;
    use crate::laptop::Laptop;
    use emsc_covert::rx::Receiver;
    use emsc_runtime::with_threads;
    use emsc_sdr::Capture;

    fn near_field_capture() -> (CovertScenario, Capture, Vec<u8>) {
        let laptop = Laptop::dell_inspiron();
        let chain = Chain::new(&laptop, Setup::NearField);
        let scenario = CovertScenario::for_laptop(&laptop, chain);
        let payload = b"session".to_vec();
        let outcome = scenario.run(&payload, 41);
        (scenario, outcome.chain_run.capture, payload)
    }

    #[test]
    fn one_session_matches_the_batch_receiver() {
        let (scenario, capture, _) = near_field_capture();
        let batch = Receiver::new(scenario.rx.clone()).receive(&capture).expect("batch decodes");

        let mut reg = SessionRegistry::new(7, 1 << 16);
        let id = reg
            .open_covert(scenario.rx.clone(), capture.sample_rate, capture.center_freq)
            .expect("open");
        for chunk in capture.samples.chunks(10_000) {
            while reg.offer(id, chunk).is_err() {
                reg.pump();
            }
        }
        let closed = reg.finish(id).expect("finish");
        assert!(reg.is_empty());
        assert_eq!(closed.output, SessionOutput::Covert(Ok(batch)));
        assert_eq!(closed.stats.samples_processed, capture.samples.len());
        assert_eq!(closed.stats.buffered, 0);
    }

    #[test]
    fn backpressure_rejects_without_consuming() {
        let (scenario, capture, _) = near_field_capture();
        let mut reg = SessionRegistry::new(7, 1000);
        let id = reg
            .open_covert(scenario.rx.clone(), capture.sample_rate, capture.center_freq)
            .expect("open");
        reg.offer(id, &capture.samples[..800]).expect("fits");
        let err = reg.offer(id, &capture.samples[800..1800]).unwrap_err();
        assert_eq!(err, SessionError::RejectedFull { buffered: 800, offered: 1000, limit: 1000 });
        let stats = reg.stats(id).unwrap();
        assert_eq!(stats.chunks_rejected, 1);
        assert_eq!(stats.samples_accepted, 800);
        assert_eq!(stats.buffered, 800);
        reg.pump();
        assert_eq!(reg.stats(id).unwrap().buffered, 0);
        reg.offer(id, &capture.samples[800..1800]).expect("fits after pump");
    }

    #[test]
    fn a_failing_stream_leaves_its_neighbours_unchanged() {
        let (scenario, capture, _) = near_field_capture();
        let batch = Receiver::new(scenario.rx.clone()).receive(&capture).expect("batch decodes");

        let mut reg = SessionRegistry::new(7, usize::MAX);
        let good = reg
            .open_covert(scenario.rx.clone(), capture.sample_rate, capture.center_freq)
            .expect("open good");
        let poisoned = reg
            .open_covert(scenario.rx.clone(), capture.sample_rate, capture.center_freq)
            .expect("open poisoned");
        reg.offer(good, &capture.samples).unwrap();
        reg.offer(poisoned, &vec![Complex::new(f64::NAN, f64::NAN); 50_000]).unwrap();
        reg.pump();

        let bad = reg.finish(poisoned).expect("finish poisoned");
        assert!(
            matches!(bad.output, SessionOutput::Covert(Err(_))),
            "poisoned stream should fail: {:?}",
            bad.output
        );
        let ok = reg.finish(good).expect("finish good");
        assert_eq!(ok.output, SessionOutput::Covert(Ok(batch)));
    }

    #[test]
    fn pump_results_are_thread_count_invariant() {
        let (scenario, capture, _) = near_field_capture();
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut reg = SessionRegistry::new(7, 1 << 15);
                let ids: Vec<SessionId> = (0..4)
                    .map(|_| {
                        reg.open_covert(
                            scenario.rx.clone(),
                            capture.sample_rate,
                            capture.center_freq,
                        )
                        .expect("open")
                    })
                    .collect();
                for chunk in capture.samples.chunks(9973) {
                    for &id in &ids {
                        while reg.offer(id, chunk).is_err() {
                            reg.pump();
                        }
                    }
                }
                ids.into_iter().map(|id| reg.finish(id).expect("finish")).collect::<Vec<_>>()
            })
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn per_session_seeds_are_positional() {
        let mut reg = SessionRegistry::new(2020, usize::MAX);
        let cfg = DetectorConfig::new(970e3);
        let a = reg.open_keylog(cfg.clone(), 2.4e6, 1.455e6).expect("open a");
        let b = reg.open_keylog(cfg, 2.4e6, 1.455e6).expect("open b");
        assert_eq!(reg.stats(a).unwrap().seed, seed_for(2020, 0));
        assert_eq!(reg.stats(b).unwrap().seed, seed_for(2020, 1));
        assert_eq!(reg.session_ids(), vec![a, b]);
    }

    #[test]
    fn failed_streams_are_counted_in_their_stats() {
        let (scenario, capture, _) = near_field_capture();
        let mut reg = SessionRegistry::new(7, usize::MAX);
        let good = reg
            .open_covert(scenario.rx.clone(), capture.sample_rate, capture.center_freq)
            .expect("open good");
        let bad = reg
            .open_covert(scenario.rx.clone(), capture.sample_rate, capture.center_freq)
            .expect("open bad");
        reg.offer(good, &capture.samples).unwrap();
        reg.offer(bad, &vec![Complex::new(f64::NAN, f64::NAN); 50_000]).unwrap();
        reg.pump();

        let ok = reg.finish(good).expect("finish good");
        assert_eq!(ok.stats.stream_errors, 0);
        assert_eq!(ok.stats.last_error, None);
        assert!(!ok.output.is_err());
        assert_eq!(ok.output.error_kind(), None);

        let failed = reg.finish(bad).expect("finish bad");
        assert_eq!(failed.stats.stream_errors, 1);
        assert!(failed.output.is_err());
        assert_eq!(failed.stats.last_error, failed.output.error_kind());
        assert!(
            failed.output.is_retryable_err(),
            "an all-NaN capture is a transient device fault: {:?}",
            failed.output
        );
    }

    #[test]
    fn abort_discards_a_session_without_finalising() {
        let (scenario, capture, _) = near_field_capture();
        let mut reg = SessionRegistry::new(7, usize::MAX);
        let id = reg
            .open_covert(scenario.rx.clone(), capture.sample_rate, capture.center_freq)
            .expect("open");
        reg.offer(id, &capture.samples[..10_000]).unwrap();
        let stats = reg.abort(id).expect("abort");
        assert_eq!(stats.samples_accepted, 10_000);
        assert_eq!(stats.buffered, 10_000, "abort reports the discarded backlog");
        assert!(reg.is_empty());
        assert_eq!(reg.abort(id), Err(SessionError::UnknownSession), "double abort must fail");
        assert!(reg.finish(id).is_err(), "aborted session cannot be finished");
    }

    #[test]
    fn unknown_and_finished_sessions_are_rejected() {
        let mut reg = SessionRegistry::new(0, usize::MAX);
        let bogus = SessionId(3);
        assert_eq!(reg.offer(bogus, &[]), Err(SessionError::UnknownSession));
        assert_eq!(reg.stats(bogus), Err(SessionError::UnknownSession));
        assert!(reg.finish(bogus).is_err());
        let id = reg.open_keylog(DetectorConfig::new(970e3), 2.4e6, 0.0).expect("open");
        let _ = reg.finish(id).expect("first finish");
        assert!(reg.finish(id).is_err(), "double finish must fail");
    }
}
