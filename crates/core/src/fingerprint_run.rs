//! Website-fingerprinting scenario runner (the §III attack-model
//! extension): simulate page loads, observe them through the EM
//! chain, classify which site was visited.

use emsc_fingerprint::classify::{leave_one_out_accuracy, LabeledVisit};
use emsc_fingerprint::features::FeatureVector;
use emsc_fingerprint::workload::SiteProfile;
use emsc_keylog::burst::BurstModel;
use emsc_keylog::detect::{Detector, DetectorConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::chain::Chain;

/// Idle margin around each visit, seconds.
const VISIT_MARGIN_S: f64 = 0.4;

/// One observed visit.
#[derive(Debug, Clone)]
pub struct ObservedVisit {
    /// True site label.
    pub label: String,
    /// Features the attacker extracted (None if nothing was detected).
    pub features: Option<FeatureVector>,
    /// Number of bursts detected.
    pub bursts: usize,
}

/// Fingerprinting experiment output.
#[derive(Debug, Clone)]
pub struct FingerprintOutcome {
    /// All observed visits.
    pub visits: Vec<ObservedVisit>,
    /// Leave-one-out classification accuracy over the visits that
    /// produced features.
    pub accuracy: f64,
    /// Chance level (1 / number of sites).
    pub chance: f64,
}

/// Runs the fingerprinting attack over a chain.
#[derive(Debug, Clone)]
pub struct FingerprintScenario {
    /// The physical chain.
    pub chain: Chain,
    /// Site library under attack.
    pub sites: Vec<SiteProfile>,
    /// Browser background-activity model.
    pub bursts: BurstModel,
    /// Detector configuration.
    pub detector: DetectorConfig,
    /// Per-visit timing jitter (0.1 = ±10 %).
    pub visit_jitter: f64,
}

impl FingerprintScenario {
    /// Standard setup: the bundled site library, browser burst model,
    /// detector tuned to the chain's VRM band.
    pub fn standard(chain: Chain, sites: Vec<SiteProfile>) -> Self {
        let detector = DetectorConfig::new(chain.switching_freq_hz());
        FingerprintScenario {
            chain,
            sites,
            bursts: BurstModel::browser(),
            detector,
            visit_jitter: 0.10,
        }
    }

    /// Observes one visit to `site` through the chain and extracts its
    /// features.
    pub fn observe_visit(&self, site: &SiteProfile, seed: u64) -> ObservedVisit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = site.visit_events(VISIT_MARGIN_S, self.visit_jitter, &mut rng);
        let end = site.load_time_s() + 2.0 * VISIT_MARGIN_S;
        // Browser housekeeping runs during the load as well.
        events.extend(self.bursts.events_for(&[], end, &mut rng));
        events.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap_or(std::cmp::Ordering::Equal));

        let run = self.chain.run_events(end, &events, seed);
        let detector = Detector::new(self.detector.clone());
        let report = detector.detect(&run.capture);
        ObservedVisit {
            label: site.name.clone(),
            features: FeatureVector::from_bursts(&report.bursts),
            bursts: report.bursts.len(),
        }
    }

    /// Observes `visits_per_site` visits to every site and evaluates
    /// leave-one-out classification accuracy. The (site × visit) grid
    /// fans out across the worker pool; each visit's seed depends only
    /// on its grid position, so the outcome is thread-count
    /// independent.
    pub fn run(&self, visits_per_site: usize, seed: u64) -> FingerprintOutcome {
        let grid: Vec<(usize, u64)> = (0..self.sites.len())
            .flat_map(|si| (0..visits_per_site as u64).map(move |v| (si, v)))
            .collect();
        let visits = emsc_runtime::par_map(&grid, |&(si, v)| {
            let s = seed ^ ((si as u64) << 32) ^ (v << 8);
            self.observe_visit(&self.sites[si], s)
        });
        let labelled: Vec<LabeledVisit> = visits
            .iter()
            .filter_map(|v| {
                v.features.map(|features| LabeledVisit { label: v.label.clone(), features })
            })
            .collect();
        // k must stay below the per-class count, otherwise leave-one-
        // out systematically votes for the other class on small sets.
        let k = (visits_per_site.saturating_sub(1)).clamp(1, 3);
        let accuracy = leave_one_out_accuracy(&labelled, k);
        FingerprintOutcome { visits, accuracy, chance: 1.0 / self.sites.len().max(1) as f64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Setup;
    use crate::laptop::Laptop;
    use emsc_fingerprint::workload::site_library;

    #[test]
    fn visits_produce_features() {
        let laptop = Laptop::dell_precision();
        let chain = Chain::new(&laptop, Setup::NearField);
        let scenario = FingerprintScenario::standard(chain, site_library());
        let visit = scenario.observe_visit(&scenario.sites[0], 5);
        assert_eq!(visit.label, "news-portal");
        let f = visit.features.expect("bursts must be detected");
        // Total active time in the ballpark of the profile.
        let profile_active = scenario.sites[0].total_active_s();
        assert!(
            (f.values[0] - profile_active).abs() / profile_active < 0.4,
            "active {} vs profile {}",
            f.values[0],
            profile_active
        );
    }

    #[test]
    fn sites_are_distinguishable_well_above_chance() {
        let laptop = Laptop::dell_precision();
        let chain = Chain::new(&laptop, Setup::LineOfSight(2.0));
        // Subset of sites and visits keeps the test fast; the full
        // library runs in the `fingerprinting` example.
        let sites: Vec<_> = site_library().into_iter().take(3).collect();
        let scenario = FingerprintScenario::standard(chain, sites);
        let outcome = scenario.run(2, 77);
        assert!(
            outcome.accuracy > 1.8 * outcome.chance,
            "accuracy {} vs chance {}",
            outcome.accuracy,
            outcome.chance
        );
    }
}
