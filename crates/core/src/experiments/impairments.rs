//! BER vs. channel-impairment severity: the fault-injection sweep.
//!
//! The paper's numbers come from a clean near-field capture; a real
//! deployment sees clock drift, AGC re-ranging, USB overruns,
//! impulsive interference and front-end saturation. This sweep drives
//! the standard near-field scenario through growing stacks of those
//! impairments (see [`emsc_sdr::impair`]) and reports how gracefully
//! the receiver degrades — including how often it fails to decode at
//! all, which the panic-free receive chain now surfaces as a typed
//! error instead of a crash.
//!
//! Deterministic: every cell derives its impairment sub-seed
//! positionally via [`emsc_runtime::seed_for`], so the table is
//! bit-identical across `EMSC_THREADS` settings.

use emsc_runtime::{par_map, seed_for};
use emsc_sdr::impair::{severity_label, Impairment};

use crate::chain::{Chain, Setup};
use crate::covert_run::CovertScenario;
use crate::experiments::tables::{pseudo_payload, TableScale};
use crate::laptop::Laptop;

/// Number of severity levels in the sweep (0 = clean … 4 = severe).
pub const SEVERITIES: usize = emsc_sdr::impair::SEVERITY_LEVELS;

/// One severity level of the impairment sweep, averaged over runs.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ImpairmentRow {
    /// Severity level, 0 (clean channel) through 4 (severe).
    pub severity: usize,
    /// Human-readable description of the impairment stack.
    pub label: String,
    /// Mean bit-error rate.
    pub ber: f64,
    /// Mean insertion probability.
    pub ip: f64,
    /// Mean deletion probability.
    pub dp: f64,
    /// Fraction of runs whose payload was exactly recovered.
    pub recovery_rate: f64,
    /// Runs the receiver could not decode at all (typed `RxError`).
    pub decode_failures: usize,
}

/// The impairment stack applied at a given severity — the canonical
/// [`emsc_sdr::impair::severity_stack`], re-exported here so the
/// E3 table and the E6 robustness sweep impair their channels
/// bit-identically.
pub fn impairments_at(severity: usize) -> Vec<Impairment> {
    emsc_sdr::impair::severity_stack(severity)
}

/// Channel statistics of one impaired run.
struct CellStats {
    ber: f64,
    ip: f64,
    dp: f64,
    recovered: bool,
    decode_failed: bool,
}

fn impaired_cell(
    scenario: &CovertScenario,
    payload_bytes: usize,
    seed: u64,
    severity: usize,
    run: usize,
    runs: usize,
) -> CellStats {
    let payload = pseudo_payload(payload_bytes, seed + run as u64);
    // One positional cell index per (severity, run) pair keeps the
    // impairment randomness independent of scheduling order.
    let cell = (severity * runs + run) as u64;
    let outcome = scenario.run_impaired(
        &payload,
        seed + 1000 * run as u64,
        &impairments_at(severity),
        seed_for(seed, cell),
    );
    CellStats {
        ber: outcome.alignment.ber(),
        ip: outcome.alignment.insertion_probability(),
        dp: outcome.alignment.deletion_probability(),
        recovered: outcome.recovered(&payload),
        decode_failed: outcome.rx_error.is_some(),
    }
}

fn reduce(severity: usize, cells: &[CellStats]) -> ImpairmentRow {
    let mut ber = 0.0;
    let mut ip = 0.0;
    let mut dp = 0.0;
    let mut recovered = 0usize;
    let mut decode_failures = 0usize;
    for c in cells {
        ber += c.ber;
        ip += c.ip;
        dp += c.dp;
        if c.recovered {
            recovered += 1;
        }
        if c.decode_failed {
            decode_failures += 1;
        }
    }
    let n = cells.len().max(1) as f64;
    ImpairmentRow {
        severity,
        label: severity_label(severity).to_string(),
        ber: ber / n,
        ip: ip / n,
        dp: dp / n,
        recovery_rate: recovered as f64 / n,
        decode_failures,
    }
}

/// Runs the full severity sweep on the standard near-field scenario
/// (Dell Inspiron). The (severity × run) grid is flattened into one
/// [`par_map`] so the pool stays busy; reduction is serial and in run
/// order, so results are bit-identical across thread counts.
pub fn impairment_sweep(scale: TableScale, seed: u64) -> Vec<ImpairmentRow> {
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = CovertScenario::for_laptop(&laptop, chain);

    let cells: Vec<(usize, usize)> =
        (0..SEVERITIES).flat_map(|s| (0..scale.runs).map(move |r| (s, r))).collect();
    let stats = par_map(&cells, |&(sev, run)| {
        impaired_cell(&scenario, scale.payload_bytes, seed, sev, run, scale.runs)
    });
    (0..SEVERITIES).map(|s| reduce(s, &stats[s * scale.runs..(s + 1) * scale.runs])).collect()
}

/// Renders the sweep in the Table II style.
pub fn render_impairment_rows(rows: &[ImpairmentRow]) -> String {
    super::render_table(
        "BER vs. channel-impairment severity (Dell Inspiron, near-field)",
        &["Severity", "Stack", "BER", "IP", "DP", "Recovery", "Decode failures"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.severity.to_string(),
                    r.label.clone(),
                    super::fmt_prob(r.ber),
                    super::fmt_prob(r.ip),
                    super::fmt_prob(r.dp),
                    format!("{:.2}", r.recovery_rate),
                    r.decode_failures.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_stacks_grow_monotonically() {
        for s in 0..SEVERITIES - 1 {
            assert!(
                impairments_at(s).len() <= impairments_at(s + 1).len(),
                "severity {s} stack larger than severity {}",
                s + 1
            );
        }
        assert!(impairments_at(0).is_empty());
    }

    #[test]
    fn severity_zero_is_bit_identical_to_the_unimpaired_run() {
        // The clean row of the E3 sweep must be *exactly* the
        // unimpaired scenario — same capture bits, same decode — for
        // any impair seed, because severity 0 is the empty stack.
        let laptop = Laptop::dell_inspiron();
        let chain = Chain::new(&laptop, Setup::NearField);
        let scenario = CovertScenario::for_laptop(&laptop, chain);
        let clean = scenario.run(b"severity-zero", 31);
        let impaired = scenario.run_impaired(b"severity-zero", 31, &impairments_at(0), 0xABCD);
        assert!(clean
            .chain_run
            .capture
            .samples
            .iter()
            .zip(&impaired.chain_run.capture.samples)
            .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()));
        assert_eq!(clean.report.bits, impaired.report.bits);
        assert_eq!(clean.rx_error, impaired.rx_error);
    }

    #[test]
    fn sweep_degrades_with_severity_and_never_panics() {
        let rows = impairment_sweep(TableScale::quick(), 77);
        assert_eq!(rows.len(), SEVERITIES);
        // The clean channel decodes.
        assert_eq!(rows[0].decode_failures, 0, "clean channel failed to decode");
        assert!(rows[0].ber < 0.1, "clean BER {}", rows[0].ber);
        // The severe channel is strictly worse than the clean one.
        // Impairments that desynchronise timing (dropped samples,
        // drift) surface as insertions/deletions rather than raw
        // substitutions, so compare the combined error probability —
        // or an outright decode failure.
        let total = |r: &ImpairmentRow| r.ber + r.ip + r.dp;
        let worst = &rows[SEVERITIES - 1];
        assert!(
            total(worst) > 2.0 * total(&rows[0]) || worst.decode_failures > 0,
            "severity 4 did not degrade the channel: {} vs {}",
            total(worst),
            total(&rows[0])
        );
    }
}
