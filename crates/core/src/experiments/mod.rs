//! One function per table and figure of the paper's evaluation.
//!
//! Every experiment returns typed rows (so tests can assert the
//! *shape* of the result) plus a `render()` that prints the same
//! table/series the paper reports. The `reproduce` example binary and
//! the `emsc-bench` Criterion harness both drive these functions;
//! `EXPERIMENTS.md` records paper-vs-measured for each.
//!
//! | Paper artefact | Function |
//! |---|---|
//! | Fig. 2 (spectrogram of active/idle alternation) | [`spectral::fig2`] |
//! | §III BIOS sweep | [`spectral::fig2_bios`] |
//! | Fig. 4 (energy signal + bits) | [`covert_figs::fig4`] |
//! | Fig. 5 (edge detection) | [`covert_figs::fig5`] |
//! | Fig. 6 (pulse-width distribution) | [`covert_figs::fig6`] |
//! | Fig. 7 (power histogram + threshold) | [`covert_figs::fig7`] |
//! | Fig. 8 (insertion/deletion) | [`covert_figs::fig8`] |
//! | Table I (laptops) | [`tables::table1`] |
//! | Table II (near-field BER/TR/IP/DP) | [`tables::table2`] |
//! | §IV-C2 background-activity stress | [`tables::table2_background`] |
//! | Fig. 9 (rate vs. prior work) | [`tables::fig9`] |
//! | Table III (distance sweep) | [`tables::table3`] |
//! | Fig. 10 / §IV-C3 (through-wall NLoS) | [`tables::fig10_nlos`] |
//! | Fig. 11 (keylog spectrogram) | [`spectral::fig11`] |
//! | Table IV (keylogging accuracy) | [`keylog_table::table4`] |
//! | E1/E2 (extensions: fingerprinting, timing) | [`extensions`] |
//! | E3 (BER vs. channel impairments) | [`impairments::impairment_sweep`] |
//! | E4 (multi-tenant streaming vs. batch) | [`streaming::streaming_sessions`] |
//! | E5 (supervised capture-daemon soak) | `emsc_service::soak` (service crate) |
//! | E6 (deletion robustness: rigid vs. marker vs. adaptive) | [`robust::robust_sweep`] |

pub mod covert_figs;
pub mod extensions;
pub mod impairments;
pub mod keylog_table;
pub mod robust;
pub mod spectral;
pub mod streaming;
pub mod tables;

/// Renders a fixed-width text table: a header row plus data rows.
pub(crate) fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let rule: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
    out.push_str(&rule);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(" {:<width$} ", c, width = widths.get(i).copied().unwrap_or(c.len()))
            })
            .collect::<Vec<_>>()
            .join("|")
    };
    out.push_str(&fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a probability in the paper's scientific style (`2×10⁻³`
/// rendered as `2.0e-3`), with `0` for exact zero.
pub(crate) fn fmt_prob(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else {
        format!("{p:.1e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            "T",
            &["a", "long-header"],
            &[vec!["xxxx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[2].contains('a') && lines[2].contains("long-header"));
        // All data lines equal length.
        assert_eq!(lines[4].len(), lines[5].len());
    }

    #[test]
    fn fmt_prob_styles() {
        assert_eq!(fmt_prob(0.0), "0");
        assert_eq!(fmt_prob(2e-3), "2.0e-3");
        assert_eq!(fmt_prob(4.5e-3), "4.5e-3");
    }
}
