//! The covert-channel mechanism figures: Figs. 4–8.

use emsc_covert::metrics::{align, Alignment};
use emsc_covert::rx::RxReport;
use emsc_pmu::noise::NoiseConfig;
use emsc_runtime::par_invoke;
use emsc_sdr::stats::{skewness, Histogram, RayleighFit};

use crate::chain::{Chain, Setup};
use crate::covert_run::CovertScenario;
use crate::laptop::Laptop;

fn standard_scenario() -> CovertScenario {
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    CovertScenario::for_laptop(&laptop, chain)
}

fn pseudo_payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(151).wrapping_add(43)).collect()
}

/// Fig. 4: the Eq. (1) energy signal with the transmitted bits.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// The receiver's full report (energy, starts, bits…).
    pub report: RxReport,
    /// The bits that were transmitted.
    pub tx_bits: Vec<u8>,
}

impl Fig4 {
    /// Renders the energy signal as an ASCII strip chart with bit
    /// boundaries.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 4 — energy signal Y[n] (Eq. 1) with recovered bit starts\n");
        let y = &self.report.energy;
        let n = y.len().min(4000);
        let peak = y[..n].iter().cloned().fold(1e-30, f64::max);
        let cols = 96;
        let per_col = n.div_ceil(cols);
        let mut levels = Vec::new();
        for c in 0..cols {
            let lo = c * per_col;
            let hi = ((c + 1) * per_col).min(n);
            if lo >= hi {
                break;
            }
            let m = y[lo..hi].iter().cloned().fold(0.0, f64::max);
            levels.push((m / peak * 7.0).round() as usize);
        }
        for row in (0..8).rev() {
            for &l in &levels {
                s.push(if l >= row { '#' } else { ' ' });
            }
            s.push('\n');
        }
        s.push_str(&format!(
            "{} bits transmitted, {} starts detected, bit period {:.0} µs\n",
            self.tx_bits.len(),
            self.report.starts.len(),
            self.report.bit_period_s * 1e6
        ));
        s
    }
}

/// Runs Fig. 4: a short pattern over the standard near-field chain.
pub fn fig4(seed: u64) -> Fig4 {
    let scenario = standard_scenario();
    let outcome = scenario.run(&pseudo_payload(4), seed);
    Fig4 { report: outcome.report, tx_bits: outcome.tx_bits }
}

/// Fig. 5: the edge-detection convolution and its peaks.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// The receiver report (the edge response lives in it).
    pub report: RxReport,
    /// Fraction of transmitted bits whose start produced a raw edge
    /// peak (before gap filling).
    pub raw_edge_coverage: f64,
}

/// Runs Fig. 5 on the standard chain.
pub fn fig5(seed: u64) -> Fig5 {
    let scenario = standard_scenario();
    let payload = pseudo_payload(8);
    let outcome = scenario.run(&payload, seed);
    let coverage = outcome.report.raw_starts.len() as f64 / outcome.tx_bits.len() as f64;
    Fig5 { report: outcome.report, raw_edge_coverage: coverage }
}

/// Fig. 6: the pulse-width (inter-start distance) distribution.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Inter-start distances, seconds.
    pub distances_s: Vec<f64>,
    /// Shifted-Rayleigh fit to the distances.
    pub fit: RayleighFit,
    /// Sample skewness (positive = right-skewed, as in the paper).
    pub skewness: f64,
    /// The median the receiver picked as the signalling time.
    pub median_s: f64,
}

impl Fig6 {
    /// Renders the distance histogram with the fitted density.
    pub fn render(&self) -> String {
        let hist = Histogram::from_data(&self.distances_s, 36);
        let density = hist.density();
        let peak = density.iter().cloned().fold(1e-30, f64::max);
        let mut s = format!(
            "Fig. 6 — pulse-width distribution: median {:.0} µs, skewness {:+.2}, Rayleigh σ {:.1} µs\n",
            self.median_s * 1e6,
            self.skewness,
            self.fit.sigma * 1e6
        );
        for (i, &d) in density.iter().enumerate() {
            let bar = (d / peak * 60.0).round() as usize;
            s.push_str(&format!("{:7.0} µs | {}\n", hist.bin_center(i) * 1e6, "*".repeat(bar)));
        }
        s
    }
}

/// Runs Fig. 6 over a longer stream so the distribution fills in.
pub fn fig6(seed: u64) -> Fig6 {
    let scenario = standard_scenario();
    let outcome = scenario.run(&pseudo_payload(48), seed);
    // Single-bit spacings only: multi-bit gaps (lead-in, pauses,
    // missed starts) belong to the detection pathology, not the
    // pulse-width distribution of Fig. 6.
    let distances: Vec<f64> = outcome
        .report
        .distances_s
        .iter()
        .copied()
        .filter(|&d| d < 1.8 * outcome.report.bit_period_s)
        .collect();
    // A decode that produced no inter-start distances (e.g. a fully
    // impaired capture) degrades to a flat fit instead of panicking.
    let fit = RayleighFit::try_fit(&distances).unwrap_or(RayleighFit { location: 0.0, sigma: 0.0 });
    Fig6 {
        skewness: skewness(&distances),
        median_s: outcome.report.bit_period_s,
        distances_s: distances,
        fit,
    }
}

/// Fig. 7: the per-bit power distribution and the threshold between
/// its two modes.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Per-bit mean powers.
    pub powers: Vec<f64>,
    /// Selected threshold.
    pub threshold: f64,
    /// The two modes, when found.
    pub modes: Option<(f64, f64)>,
}

impl Fig7 {
    /// Renders the power histogram with the threshold marked.
    pub fn render(&self) -> String {
        let hist = Histogram::from_data(&self.powers, 36);
        let counts = hist.counts();
        let peak = counts.iter().cloned().max().unwrap_or(1) as f64;
        let mut s = match self.modes {
            Some((lo, hi)) => format!(
                "Fig. 7 — per-bit power distribution: modes at {lo:.1} and {hi:.1}, threshold {:.1}\n",
                self.threshold
            ),
            None => format!("Fig. 7 — per-bit power distribution: threshold {:.1}\n", self.threshold),
        };
        for (i, &c) in counts.iter().enumerate() {
            let center = hist.bin_center(i);
            let mark =
                if (center - self.threshold).abs() < (hist.bin_center(1) - hist.bin_center(0)) {
                    "<-- thr"
                } else {
                    ""
                };
            s.push_str(&format!(
                "{:9.1} | {} {}\n",
                center,
                "*".repeat((c as f64 / peak * 60.0).round() as usize),
                mark
            ));
        }
        s
    }
}

/// Runs Fig. 7 on the standard chain.
pub fn fig7(seed: u64) -> Fig7 {
    let scenario = standard_scenario();
    let outcome = scenario.run(&pseudo_payload(48), seed);
    Fig7 {
        powers: outcome.report.powers.clone(),
        threshold: outcome.report.threshold,
        modes: outcome.report.threshold_modes,
    }
}

/// Fig. 8: bit insertion/deletion under interrupt-heavy conditions.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Alignment under normal system noise.
    pub normal: Alignment,
    /// Alignment with an interrupt storm (long bursts injected).
    pub stormy: Alignment,
}

impl Fig8 {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        super::render_table(
            "Fig. 8 — insertions/deletions from system activity",
            &["condition", "substitutions", "insertions", "deletions"],
            &[
                vec![
                    "normal OS noise".into(),
                    self.normal.substitutions.to_string(),
                    self.normal.insertions.to_string(),
                    self.normal.deletions.to_string(),
                ],
                vec![
                    "interrupt storm".into(),
                    self.stormy.substitutions.to_string(),
                    self.stormy.insertions.to_string(),
                    self.stormy.deletions.to_string(),
                ],
            ],
        )
    }
}

/// Runs Fig. 8: the same transfer with normal noise and with an
/// injected storm of long interrupts (the §IV-B4 "domino effect"
/// conditions). Uses the *global* alignment so the error events are
/// visible even at the stream edges.
pub fn fig8(seed: u64) -> Fig8 {
    let payload = pseudo_payload(24);
    // The two arms are independent captures — run them concurrently.
    let arms = par_invoke(vec![
        Box::new(|| {
            let scenario = standard_scenario();
            let outcome = scenario.run(&payload, seed);
            align(&outcome.tx_bits, &outcome.report.bits)
        }) as Box<dyn Fn() -> Alignment + Send + Sync>,
        Box::new(|| {
            let laptop = Laptop::dell_inspiron();
            let mut chain = Chain::new(&laptop, Setup::NearField);
            chain.machine.noise = NoiseConfig {
                long_rate_hz: 120.0,
                long_duration_s: 500e-6,
                ..NoiseConfig::normal()
            };
            let scenario = CovertScenario::for_laptop(&laptop, chain);
            let outcome = scenario.run(&payload, seed);
            align(&outcome.tx_bits, &outcome.report.bits)
        }),
    ]);
    let mut arms = arms.into_iter();
    Fig8 { normal: arms.next().unwrap(), stormy: arms.next().unwrap() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_energy_tracks_bits() {
        let f = fig4(1);
        assert!(!f.report.energy.is_empty());
        // Start count within ~15 % of the transmitted bit count.
        let ratio = f.report.starts.len() as f64 / f.tx_bits.len() as f64;
        assert!((0.85..1.15).contains(&ratio), "ratio {ratio}");
        assert!(f.render().contains("Fig. 4"));
    }

    #[test]
    fn fig5_edges_cover_most_bits() {
        let f = fig5(1);
        assert!(f.raw_edge_coverage > 0.8, "coverage {}", f.raw_edge_coverage);
        assert!(!f.report.edge_response.is_empty());
    }

    #[test]
    fn fig6_distances_are_right_skewed() {
        let f = fig6(1);
        assert!(f.distances_s.len() > 100);
        assert!(f.skewness > 0.0, "skewness {}", f.skewness);
        // Median near the fit's median (Rayleigh-like shape).
        let rel = (f.fit.median() - f.median_s).abs() / f.median_s;
        assert!(rel < 0.25, "fit median {} vs {}", f.fit.median(), f.median_s);
        assert!(f.render().contains("µs"));
    }

    #[test]
    fn fig7_powers_are_bimodal() {
        let f = fig7(1);
        let (lo, hi) = f.modes.expect("bimodal power histogram");
        assert!(lo < f.threshold && f.threshold < hi);
        assert!(hi > 3.0 * lo, "modes too close: {lo} {hi}");
    }

    #[test]
    fn fig8_storm_causes_more_indels() {
        let f = fig8(1);
        let normal_indels = f.normal.insertions + f.normal.deletions;
        let stormy_indels = f.stormy.insertions + f.stormy.deletions;
        assert!(stormy_indels > normal_indels, "storm {stormy_indels} vs normal {normal_indels}");
    }
}
