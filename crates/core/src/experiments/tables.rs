//! The evaluation tables: Table I, Table II (+ background stress),
//! Table III, Fig. 9 and the Fig. 10 NLoS result.

use emsc_baselines::{all_baselines, Baseline};
use emsc_covert::metrics::align_semiglobal;
use emsc_covert::rx::Receiver;
use emsc_covert::tx::{Transmitter, TxConfig};
use emsc_pmu::multicore::MultiCoreMachine;
use emsc_pmu::noise::NoiseConfig;
use emsc_pmu::workload::Program;
use emsc_runtime::{par_invoke, par_map};

use crate::chain::{Chain, Setup};
use crate::covert_run::CovertScenario;
use crate::laptop::Laptop;

/// Scale of a table experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableScale {
    /// Payload bytes per run.
    pub payload_bytes: usize,
    /// Averaging runs (the paper uses 5).
    pub runs: usize,
}

impl TableScale {
    /// Fast scale for unit tests.
    pub fn quick() -> Self {
        TableScale { payload_bytes: 16, runs: 1 }
    }

    /// The paper's scale: 5 runs of a longer random stream.
    pub fn paper() -> Self {
        TableScale { payload_bytes: 96, runs: 5 }
    }
}

pub(crate) fn pseudo_payload(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed ^ 0x243F_6A88_85A3_08D3;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xFF) as u8
        })
        .collect()
}

/// Renders Table I (the laptop inventory).
pub fn table1() -> String {
    super::render_table(
        "Table I — evaluation laptops",
        &["Model", "OS", "Architecture", "f_sw (kHz)"],
        &Laptop::all()
            .iter()
            .map(|l| {
                vec![
                    l.model.to_string(),
                    l.os.name().to_string(),
                    l.microarch.name().to_string(),
                    format!("{:.0}", l.switching_freq_hz / 1e3),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// One Table II / Table III row: averaged channel quality.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelRow {
    /// Row label (laptop model or distance).
    pub label: String,
    /// Mean bit-error rate.
    pub ber: f64,
    /// Mean transmission rate, bits/second.
    pub tr_bps: f64,
    /// Mean insertion probability.
    pub ip: f64,
    /// Mean deletion probability.
    pub dp: f64,
    /// Fraction of runs whose payload was exactly recovered after
    /// parity correction.
    pub recovery_rate: f64,
    /// Number of runs the receiver could not decode at all (typed
    /// `RxError`): those runs contribute an all-lost alignment to the
    /// averages instead of aborting the grid.
    pub decode_failures: usize,
}

/// Channel statistics of one averaging run (one grid cell).
struct RunStats {
    ber: f64,
    tr_bps: f64,
    ip: f64,
    dp: f64,
    recovered: bool,
    decode_failed: bool,
}

/// One averaging run of a covert transfer — the independent unit the
/// worker pool schedules. The seed arithmetic (`seed + run` for the
/// payload, `seed + 1000·run` for the channel) is the same as the
/// original serial loop, so a cell computes identical numbers no
/// matter which worker picks it up.
fn channel_cell(
    scenario: &CovertScenario,
    payload_bytes: usize,
    seed: u64,
    run: usize,
) -> RunStats {
    let payload = pseudo_payload(payload_bytes, seed + run as u64);
    // Fused streamed run: identical metrics to `scenario.run`, without
    // materialising the cell's multi-megabyte capture.
    let outcome = scenario.run_streamed(&payload, seed + 1000 * run as u64);
    RunStats {
        ber: outcome.alignment.ber(),
        tr_bps: outcome.transmission_rate_bps,
        ip: outcome.alignment.insertion_probability(),
        dp: outcome.alignment.deletion_probability(),
        recovered: outcome.recovered(&payload),
        decode_failed: outcome.rx_error.is_some(),
    }
}

/// Reduces a row's run cells into the averaged row. Accumulation is
/// serial and in run order, so the float sums match the pre-parallel
/// implementation bit for bit.
fn reduce_cells(label: &str, cells: &[RunStats]) -> ChannelRow {
    let mut ber = 0.0;
    let mut tr = 0.0;
    let mut ip = 0.0;
    let mut dp = 0.0;
    let mut recovered = 0usize;
    let mut decode_failures = 0usize;
    for c in cells {
        ber += c.ber;
        tr += c.tr_bps;
        ip += c.ip;
        dp += c.dp;
        if c.recovered {
            recovered += 1;
        }
        if c.decode_failed {
            decode_failures += 1;
        }
    }
    let n = cells.len().max(1) as f64;
    ChannelRow {
        label: label.to_string(),
        ber: ber / n,
        tr_bps: tr / n,
        ip: ip / n,
        dp: dp / n,
        recovery_rate: recovered as f64 / n,
        decode_failures,
    }
}

/// Averages `runs` covert transfers over a prepared scenario, fanning
/// the runs across the worker pool.
pub fn measure_channel(
    scenario: &CovertScenario,
    label: &str,
    scale: TableScale,
    seed: u64,
) -> ChannelRow {
    let runs: Vec<usize> = (0..scale.runs).collect();
    let cells = par_map(&runs, |&run| channel_cell(scenario, scale.payload_bytes, seed, run));
    reduce_cells(label, &cells)
}

/// Measures several scenarios at once by flattening the full
/// (scenario × run) grid into one [`par_map`], so the pool stays busy
/// even when rows have unequal cost. Rows come back in input order.
pub fn measure_channel_grid(
    scenarios: &[(String, CovertScenario)],
    scale: TableScale,
    seed: u64,
) -> Vec<ChannelRow> {
    let cells: Vec<(usize, usize)> =
        (0..scenarios.len()).flat_map(|i| (0..scale.runs).map(move |r| (i, r))).collect();
    let stats =
        par_map(&cells, |&(i, run)| channel_cell(&scenarios[i].1, scale.payload_bytes, seed, run));
    scenarios
        .iter()
        .enumerate()
        .map(|(i, (label, _))| reduce_cells(label, &stats[i * scale.runs..(i + 1) * scale.runs]))
        .collect()
}

/// Table II: near-field channel quality for all six laptops. The
/// 6 laptops × `scale.runs` cells all run concurrently.
pub fn table2(scale: TableScale, seed: u64) -> Vec<ChannelRow> {
    let scenarios: Vec<(String, CovertScenario)> = Laptop::all()
        .iter()
        .map(|laptop| {
            let chain = Chain::new(laptop, Setup::NearField);
            (laptop.model.to_string(), CovertScenario::for_laptop(laptop, chain))
        })
        .collect();
    measure_channel_grid(&scenarios, scale, seed)
}

/// Renders channel rows in the Table II/III format.
pub fn render_channel_rows(title: &str, rows: &[ChannelRow]) -> String {
    super::render_table(
        title,
        &["", "BER", "TR (bps)", "IP", "DP"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    super::fmt_prob(r.ber),
                    format!("{:.0}", r.tr_bps),
                    super::fmt_prob(r.ip),
                    super::fmt_prob(r.dp),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// §IV-C2: the background-activity stress experiment. Returns the
/// baseline row, the stressed row at the same rate, and the stressed
/// row after backing the rate off (longer sleep period).
pub fn table2_background(scale: TableScale, seed: u64) -> Vec<ChannelRow> {
    let laptop = Laptop::dell_inspiron();

    let baseline_chain = Chain::new(&laptop, Setup::NearField);
    let baseline = CovertScenario::for_laptop(&laptop, baseline_chain);

    let busy_chain = {
        let mut c = Chain::new(&laptop, Setup::NearField);
        c.machine.noise = NoiseConfig::with_heavy_background();
        c
    };
    let stressed = CovertScenario::for_laptop(&laptop, busy_chain.clone());

    // Back the rate off ~15 % (the paper's average reduction) by
    // stretching both phases.
    let slow_tx = TxConfig::calibrated_with_overhead(
        &busy_chain.machine,
        laptop.tx_active_period_s() * 1.18,
        laptop.tx_sleep_period_s() * 1.18,
        laptop.tx_overhead_s(),
    );
    let expected = slow_tx.expected_bit_period_on(&busy_chain.machine);
    let rx = emsc_covert::rx::RxConfig::new(busy_chain.switching_freq_hz(), expected);
    let backed_off = CovertScenario { chain: busy_chain, tx: slow_tx, rx };

    // The last two rows are the realistic variant: the hog runs
    // *concurrently on another core* of the shared voltage rail (the
    // paper's laptops are multi-core), not time-sliced into the
    // transmitter's sleeps. All five rows × `scale.runs` cells are
    // flattened into one fan-out so the pool never idles between rows.
    let scenario_rows: [(&str, &CovertScenario); 3] = [
        ("quiet system", &baseline),
        ("heavy background, same rate", &stressed),
        ("heavy background, rate backed off", &backed_off),
    ];
    let hog_rows: [(&str, f64); 2] =
        [("hog on another core, same rate", 1.0), ("hog on another core, rate backed off", 1.18)];

    let mut cells: Vec<Box<dyn Fn() -> RunStats + Send + Sync>> = Vec::new();
    for &(_, scenario) in &scenario_rows {
        for run in 0..scale.runs {
            cells.push(Box::new(move || channel_cell(scenario, scale.payload_bytes, seed, run)));
        }
    }
    for &(_, stretch) in &hog_rows {
        let laptop = &laptop;
        for run in 0..scale.runs {
            cells.push(Box::new(move || {
                multicore_background_cell(laptop, stretch, scale.payload_bytes, seed, run)
            }));
        }
    }
    let stats = par_invoke(cells);

    let labels = scenario_rows.iter().map(|&(l, _)| l).chain(hog_rows.iter().map(|&(l, _)| l));
    labels
        .enumerate()
        .map(|(i, label)| reduce_cells(label, &stats[i * scale.runs..(i + 1) * scale.runs]))
        .collect()
}

/// One averaging run of the §IV-C2 hog-on-another-core experiment.
/// The chain/transmitter setup is rebuilt per cell — it is pure
/// configuration, deterministic and cheap next to the capture itself.
fn multicore_background_cell(
    laptop: &Laptop,
    stretch: f64,
    payload_bytes: usize,
    seed: u64,
    run: usize,
) -> RunStats {
    let chain = Chain::new(laptop, Setup::NearField);
    let tx = TxConfig::calibrated_with_overhead(
        &chain.machine,
        laptop.tx_active_period_s() * stretch,
        laptop.tx_sleep_period_s() * stretch,
        laptop.tx_overhead_s(),
    );
    let expected = tx.expected_bit_period_on(&chain.machine);
    let rx_cfg = emsc_covert::rx::RxConfig {
        // A concurrent hog shifts the whole power level up and down;
        // the RZ differential cancels that pedestal.
        label_feature: emsc_covert::rx::LabelFeature::RzDifferential,
        ..emsc_covert::rx::RxConfig::new(chain.switching_freq_hz(), expected)
    };
    let package = MultiCoreMachine::new(chain.machine.clone(), 2);
    let rx = Receiver::new(rx_cfg);

    let payload = pseudo_payload(payload_bytes, seed + run as u64);
    let transmitter = Transmitter::new(tx);
    let tx_bits = transmitter.on_air_bits(&payload);
    let mut program = Program::new();
    program.sleep(2e-3);
    program.busy(chain.machine.iterations_for_duration(20e-3));
    program.extend(transmitter.program_for_bits(&tx_bits).ops().iter().copied());
    program.sleep(2e-3);
    let duration = program.nominal_duration_s(chain.machine.steady_state_ips()) * 1.4;
    // A resource-intensive hog: ~97 % duty (10 ms of work, a
    // 0.3 ms scheduler breather).
    let hog = Program::alternating(
        10e-3,
        0.3e-3,
        (duration / 10.3e-3).ceil() as usize,
        chain.machine.steady_state_ips(),
    );
    let trace = package.run(&[program, hog], seed + 1000 * run as u64);
    let chain_run = chain.run_trace(trace, seed + 1000 * run as u64);
    let received = rx.receive(&chain_run.capture);
    let decode_failed = received.is_err();
    let report = received.unwrap_or_else(|_| emsc_covert::rx::RxReport::empty(0.0));
    let alignment = align_semiglobal(&tx_bits, &report.bits);
    let air = chain_run.trace.duration_s();
    RunStats {
        ber: alignment.ber(),
        tr_bps: tx_bits.len() as f64 / (air - 24e-3).max(1e-6),
        ip: alignment.insertion_probability(),
        dp: alignment.deletion_probability(),
        recovered: emsc_covert::frame::deframe(&report.bits, tx.frame, 1)
            .is_some_and(|d| d.payload == payload),
        decode_failed,
    }
}

/// Table III: distance sweep on the Dell Inspiron with the loop
/// antenna. The paper lowers TR as distance grows to hold BER; the
/// rate factor stretches both transmitter phases.
pub fn table3(scale: TableScale, seed: u64) -> Vec<ChannelRow> {
    let laptop = Laptop::dell_inspiron();
    // (distance m, phase stretch, label) — two operating points at 1 m
    // like the paper's Table III.
    let settings: [(f64, f64, &str); 4] = [
        (1.0, 2.0, "1 m (fast)"),
        (1.0, 2.4, "1 m (reliable)"),
        (1.5, 2.8, "1.5 m"),
        (2.5, 3.75, "2.5 m"),
    ];
    let scenarios: Vec<(String, CovertScenario)> = settings
        .iter()
        .map(|&(d, stretch, label)| {
            let chain = Chain::new(&laptop, Setup::LineOfSight(d));
            let tx = TxConfig::calibrated_with_overhead(
                &chain.machine,
                laptop.tx_active_period_s() * stretch,
                laptop.tx_sleep_period_s() * stretch,
                laptop.tx_overhead_s(),
            );
            let expected = tx.expected_bit_period_on(&chain.machine);
            let rx = emsc_covert::rx::RxConfig::new(chain.switching_freq_hz(), expected);
            (label.to_string(), CovertScenario { chain, tx, rx })
        })
        .collect();
    measure_channel_grid(&scenarios, scale, seed)
}

/// Fig. 10 / §IV-C3: the through-the-wall NLoS measurement, with the
/// printer and refrigerator interferers in place and the rate backed
/// off until reliable (the paper lands at 821 bps).
pub fn fig10_nlos(scale: TableScale, seed: u64) -> ChannelRow {
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::ThroughWall);
    let stretch = 5.2;
    let tx = TxConfig::calibrated(
        &chain.machine,
        laptop.tx_active_period_s() * stretch,
        laptop.tx_sleep_period_s() * stretch,
    );
    let expected = tx.expected_bit_period_on(&chain.machine);
    let rx = emsc_covert::rx::RxConfig::new(chain.switching_freq_hz(), expected);
    let scenario = CovertScenario { chain, tx, rx };
    measure_channel(&scenario, "1.5 m through 35 cm wall", scale, seed)
}

/// Fig. 9: transmission-rate comparison against prior physical covert
/// channels. `measured_bps` is this reproduction's best near-field
/// rate (pass the Table II maximum).
pub fn fig9(measured_bps: f64) -> (Vec<Baseline>, f64) {
    (all_baselines(), measured_bps)
}

/// Renders Fig. 9 as a log-scale ASCII bar chart.
pub fn render_fig9(baselines: &[Baseline], measured_bps: f64) -> String {
    let mut s =
        String::from("Fig. 9 — transmission rate vs. prior physical covert channels (log scale)\n");
    let max_log = measured_bps.log10();
    let bar = |rate: f64| {
        let len = ((rate.log10() / max_log) * 56.0).max(1.0) as usize;
        "#".repeat(len)
    };
    for b in baselines {
        s.push_str(&format!(
            "{:>10} | {} {:.0} bps\n",
            b.name,
            bar(b.max_rate_bps),
            b.max_rate_bps
        ));
    }
    s.push_str(&format!("{:>10} | {} {:.0} bps\n", "this work", bar(measured_bps), measured_bps));
    let fastest = baselines.last().map(|b| b.max_rate_bps).unwrap_or(1.0);
    s.push_str(&format!("speedup over fastest prior attack: {:.1}x\n", measured_bps / fastest));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_laptops() {
        let t = table1();
        for l in Laptop::all() {
            assert!(t.contains(l.model), "missing {}", l.model);
        }
    }

    #[test]
    fn table2_shape_matches_paper() {
        let rows = table2(TableScale::quick(), 42);
        assert_eq!(rows.len(), 6);
        let by_label = |m: &str| rows.iter().find(|r| r.label.contains(m)).unwrap().clone();
        // UNIX laptops ≫ Windows laptops in TR (Table II's headline).
        let unix_min = ["Inspiron", "MacBookPro", "Thinkpad"]
            .iter()
            .map(|m| by_label(m).tr_bps)
            .fold(f64::INFINITY, f64::min);
        let win_max =
            ["Precision", "Sony"].iter().map(|m| by_label(m).tr_bps).fold(0.0f64, f64::max);
        assert!(unix_min > 2.0 * win_max, "unix {unix_min} vs windows {win_max}");
        // All BERs in the paper's band (≤ ~3 %, give slack for quick scale).
        for r in &rows {
            assert!(r.ber < 0.06, "{}: BER {}", r.label, r.ber);
        }
    }

    #[test]
    fn table3_rate_decreases_with_distance() {
        let rows = table3(TableScale::quick(), 7);
        assert_eq!(rows.len(), 4);
        assert!(rows[0].tr_bps > rows[2].tr_bps);
        assert!(rows[2].tr_bps > rows[3].tr_bps);
        for r in &rows {
            assert!(r.ber < 0.08, "{}: BER {}", r.label, r.ber);
        }
    }

    #[test]
    fn fig10_is_slower_than_any_los_setting() {
        let wall = fig10_nlos(TableScale::quick(), 7);
        let rows = table3(TableScale::quick(), 7);
        assert!(wall.tr_bps < rows[3].tr_bps, "wall {} vs 2.5 m {}", wall.tr_bps, rows[3].tr_bps);
        assert!(wall.ber < 0.08, "wall BER {}", wall.ber);
    }

    #[test]
    fn fig9_renders_with_speedup() {
        let (baselines, measured) = fig9(3500.0);
        let s = render_fig9(&baselines, measured);
        assert!(s.contains("this work"));
        assert!(s.contains("GSMem"));
        assert!(s.contains("speedup"));
    }
}
