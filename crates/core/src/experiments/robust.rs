//! E6 — the deletion failure mode, fixed: rigid vs. marker-coded vs.
//! adaptive transmission across impairment severities.
//!
//! E3 established *why* the reproduced channel dies at severity 4: the
//! dropped-sample gap deletes ~33 bits, the rigid bit grid shifts, and
//! the Hamming layer (substitution-only) recovers nothing — BER looks
//! fine, recovery is zero. This sweep measures the fix. Three modes
//! run the same impaired channel:
//!
//! - **rigid** — the paper's frame exactly (Hamming(7,4), rigid grid),
//! - **marker** — the same frame wrapped in the synchronization-robust
//!   marker code ([`emsc_covert::marker`]), scored with the blind
//!   lattice salvage when even the start marker is destroyed,
//! - **adaptive** — the closed-loop controller
//!   ([`emsc_covert::adapt`]) probes the channel, walks the rate
//!   ladder until it settles, then sends the payload at the chosen
//!   rung — the paper's manual rate-vs-distance table, automated.
//!
//! Reported per (severity × mode): channel BER/DP, *goodput* (payload
//! bits actually delivered per second of air time — zero when nothing
//! decodes), exact-recovery rate, deframe failures, marker-decoder
//! activity and, for the adaptive mode, the settled rate and probe
//! spend.
//!
//! Deterministic: the (mode × severity × run) grid flattens into one
//! [`par_map`] with positional sub-seeds, so rows are bit-identical
//! across `EMSC_THREADS` settings; the adaptive probe loop runs
//! serially *inside* its cell.

use emsc_covert::adapt::{AdaptPolicy, ProbeOutcome, RateController, RateLadder, RateStep};
use emsc_covert::coding::bytes_to_bits;
use emsc_covert::frame::{salvage_marker_bits, FrameConfig};
use emsc_covert::marker::MarkerConfig;
use emsc_covert::metrics::{align, align_trace, AlignOp};
use emsc_runtime::{par_map, seed_for};
use emsc_sdr::impair::{severity_label, severity_stack, SEVERITY_LEVELS};

use crate::chain::{Chain, Setup};
use crate::covert_run::{CovertOutcome, CovertScenario};
use crate::experiments::tables::{pseudo_payload, TableScale};
use crate::laptop::Laptop;

/// Cap on probe frames the adaptive controller may spend per cell
/// before it must commit to its current rung.
pub const MAX_PROBES: usize = 8;

/// Payload bytes of one probe frame (small: probes cost air time).
const PROBE_BYTES: usize = 8;

/// Retransmissions the adaptive mode may spend on a failed transfer.
/// The closed loop already has a feedback channel (it carries the
/// probe results), so a transfer that delivered nothing is reported
/// back and resent — every attempt's airtime is charged against
/// goodput. The open-loop rigid and marker modes get no such channel:
/// their first attempt is their only attempt.
pub const MAX_RETRANSMITS: usize = 2;

/// The three transmission modes the sweep compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Rigid,
    Marker,
    Adaptive,
}

const MODES: [Mode; 3] = [Mode::Rigid, Mode::Marker, Mode::Adaptive];

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Rigid => "rigid",
            Mode::Marker => "marker",
            Mode::Adaptive => "adaptive",
        }
    }
}

/// One (severity × mode) row of the E6 sweep, averaged over runs.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RobustRow {
    /// Severity level, 0 (clean) through 4 (severe).
    pub severity: usize,
    /// Impairment-stack description.
    pub label: String,
    /// Transmission mode (`rigid`, `marker`, `adaptive`).
    pub mode: String,
    /// Mean on-air bit-error rate (substitutions).
    pub ber: f64,
    /// Mean on-air deletion probability — the quantity that kills the
    /// rigid mode.
    pub dp: f64,
    /// Mean payload bits delivered per second of air time. Exact
    /// recovery delivers the whole payload; a salvaged wreck delivers
    /// the bits the lattice recovered; a lost frame delivers zero.
    pub goodput_bps: f64,
    /// Fraction of runs whose payload was exactly recovered.
    pub recovery_rate: f64,
    /// Runs that delivered no payload bits at all: the frame was never
    /// found, or deframed to bytes that are wrong at every claimed
    /// position (a misframed read any checksum would reject).
    pub decode_failures: usize,
    /// Marker-decoder resynchronisations (recovered indel events),
    /// summed over runs.
    pub resyncs: usize,
    /// Markers the decoder had to skip, summed over runs.
    pub markers_missed: usize,
    /// Hamming codewords with a nonzero syndrome, summed over runs.
    pub corrected: usize,
    /// Mean on-air rate of the (final) payload transfer — for the
    /// adaptive mode, the rate of the rung the controller settled on.
    pub selected_rate_bps: f64,
    /// Probe frames spent before settling, summed over runs
    /// (adaptive mode only; zero otherwise).
    pub probes: usize,
    /// Retransmissions of the final transfer, summed over runs
    /// (adaptive mode only; zero otherwise). Each one's airtime is
    /// charged against goodput.
    pub retransmits: usize,
}

/// The marker-mode rung: native rate, standard marker code, no
/// interleaver (so the blind salvage stays applicable).
fn marker_step() -> RateStep {
    RateStep {
        label: "1.0x marker",
        stretch: 1.0,
        marker: Some(MarkerConfig::standard()),
        interleave_depth: None,
    }
}

/// What one finished transfer contributes to its row.
struct RobustCell {
    ber: f64,
    dp: f64,
    goodput_bps: f64,
    recovered: bool,
    decode_failed: bool,
    resyncs: usize,
    markers_missed: usize,
    corrected: usize,
    selected_rate_bps: f64,
    probes: usize,
    retransmits: usize,
}

/// Shortest aligned match run of a *salvaged* stream that earns
/// goodput credit: two Hamming codewords. An optimal alignment of
/// garbage against the payload still matches ~half the bits, but in
/// runs of only a few bits — an unlucky salvage earns nothing, while
/// verbatim recovered segments (28-bit runs) are credited in full.
const MIN_CREDIT_RUN_BITS: usize = 14;

/// Salvage credit: total length of aligned match runs of at least
/// [`MIN_CREDIT_RUN_BITS`] between the payload and the salvaged bits.
fn salvage_run_credit(tx_payload: &[u8], salvaged: &[u8]) -> usize {
    if salvaged.is_empty() {
        return 0;
    }
    let mut credit = 0usize;
    let mut run = 0usize;
    for op in align_trace(tx_payload, salvaged) {
        if matches!(op, AlignOp::Match) {
            run += 1;
        } else {
            if run >= MIN_CREDIT_RUN_BITS {
                credit += run;
            }
            run = 0;
        }
    }
    if run >= MIN_CREDIT_RUN_BITS {
        credit += run;
    }
    credit
}

/// Payload bits genuinely delivered by an outcome.
///
/// A *deframed* payload claims positional integrity — byte `i` of the
/// frame is byte `i` of the message — so it is credited positionally:
/// 8 bits per byte that is correct at its claimed index. This is what
/// kills the rigid mode's severity-4 fluke, where a spurious marker
/// match deframes a shifted read of the body: real payload *content*
/// at entirely wrong addresses, which any checksum would reject.
///
/// When no frame decoded — or the deframed bytes are worthless, as a
/// receiver discovers when its checksum fails — the blind marker
/// salvage (if the frame has a marker layer) delivers bits with no
/// addresses at all; those are credited by verbatim run
/// ([`salvage_run_credit`]). Rigid frames have no salvage: their loss
/// is total.
fn delivered_payload_bits(outcome: &CovertOutcome, payload: &[u8], frame: FrameConfig) -> usize {
    let framed = outcome
        .deframed
        .as_ref()
        .map_or(0, |d| 8 * payload.iter().zip(&d.payload).filter(|(a, b)| a == b).count());
    if framed > 0 {
        return framed;
    }
    let tx_payload = bytes_to_bits(payload);
    salvage_marker_bits(&outcome.report.bits, frame)
        .map_or(0, |s| salvage_run_credit(&tx_payload, &s.bits))
}

fn score(outcome: &CovertOutcome, payload: &[u8], frame: FrameConfig, probes: usize) -> RobustCell {
    let airtime = outcome.tx_bits.len();
    score_with_airtime(outcome, payload, frame, probes, airtime, 0)
}

/// Like [`score`], but charging goodput against `airtime_bits` of
/// total on-air transmission — which exceeds the outcome's own length
/// when earlier attempts of the same transfer were lost (ARQ).
fn score_with_airtime(
    outcome: &CovertOutcome,
    payload: &[u8],
    frame: FrameConfig,
    probes: usize,
    airtime_bits: usize,
    retransmits: usize,
) -> RobustCell {
    let matches = delivered_payload_bits(outcome, payload, frame);
    let goodput_bps = if airtime_bits == 0 {
        0.0
    } else {
        matches as f64 * outcome.transmission_rate_bps / airtime_bits as f64
    };
    let marker_stats = outcome
        .deframed
        .as_ref()
        .and_then(|d| d.marker)
        .or_else(|| salvage_marker_bits(&outcome.report.bits, frame).map(|s| s.stats));
    RobustCell {
        ber: outcome.alignment.ber(),
        dp: outcome.alignment.deletion_probability(),
        goodput_bps,
        recovered: outcome.recovered(payload),
        decode_failed: matches == 0,
        resyncs: marker_stats.map_or(0, |s| s.resyncs),
        markers_missed: marker_stats.map_or(0, |s| s.markers_missed),
        corrected: outcome.deframed.as_ref().map_or(0, |d| d.coding.corrected),
        selected_rate_bps: outcome.transmission_rate_bps,
        probes,
        retransmits,
    }
}

/// BER of a decoded probe against the probe pattern (aligned, so a
/// short payload scores by content, not position).
fn probe_result(outcome: &CovertOutcome, probe_payload: &[u8]) -> ProbeOutcome {
    match &outcome.deframed {
        Some(d) => {
            let tx = bytes_to_bits(probe_payload);
            let rx = bytes_to_bits(&d.payload);
            let a = align(&tx, &rx);
            let ber = 1.0 - a.matches as f64 / tx.len().max(1) as f64;
            ProbeOutcome { decoded: true, ber }
        }
        None => ProbeOutcome::failed(),
    }
}

fn robust_cell(
    base: &CovertScenario,
    payload_bytes: usize,
    seed: u64,
    mode: Mode,
    severity: usize,
    run: usize,
    runs: usize,
) -> RobustCell {
    let impairments = severity_stack(severity);
    let payload = pseudo_payload(payload_bytes, seed + run as u64);
    let mode_idx = MODES.iter().position(|&m| m == mode).unwrap_or(0);
    // One positional cell index per (mode, severity, run) triple; all
    // sub-seeds (probe and final) derive from it, so nothing depends
    // on scheduling order.
    let cell = ((mode_idx * SEVERITY_LEVELS + severity) * runs + run) as u64;
    let cell_seed = seed_for(seed, cell);

    let transfer = |scenario: &CovertScenario, probes: usize| {
        let outcome = scenario.run_impaired(
            &payload,
            seed + 1000 * run as u64,
            &impairments,
            seed_for(cell_seed, 0),
        );
        score(&outcome, &payload, scenario.tx.frame, probes)
    };

    match mode {
        Mode::Rigid => transfer(base, 0),
        Mode::Marker => transfer(&base.at_rate_step(&marker_step()), 0),
        Mode::Adaptive => {
            let mut rc = RateController::new(RateLadder::standard(), AdaptPolicy::default());
            let probe_payload = pseudo_payload(PROBE_BYTES, seed ^ 0x5052_4F42);
            while !rc.settled() && rc.probes() < MAX_PROBES {
                let k = rc.probes() as u64;
                let scenario = base.at_rate_step(rc.current());
                let outcome = scenario.run_impaired(
                    &probe_payload,
                    seed_for(cell_seed, 100 + k),
                    &impairments,
                    seed_for(cell_seed, 1 + k),
                );
                rc.observe(probe_result(&outcome, &probe_payload));
            }
            // Closed-loop ARQ at the settled rung: a transfer that
            // delivered nothing is reported over the feedback channel
            // and resent; every attempt's airtime counts against
            // goodput. Attempt 0 uses the same seeds as the open-loop
            // modes so a clean channel reproduces their outcome.
            let scenario = base.at_rate_step(rc.current());
            let mut airtime_bits = 0usize;
            let mut attempts = 0usize;
            loop {
                let (tx_seed, impair_seed) = if attempts == 0 {
                    (seed + 1000 * run as u64, seed_for(cell_seed, 0))
                } else {
                    (
                        seed_for(cell_seed, 200 + attempts as u64),
                        seed_for(cell_seed, 300 + attempts as u64),
                    )
                };
                let outcome = scenario.run_impaired(&payload, tx_seed, &impairments, impair_seed);
                airtime_bits += outcome.tx_bits.len();
                let delivered = delivered_payload_bits(&outcome, &payload, scenario.tx.frame) > 0;
                if delivered || attempts >= MAX_RETRANSMITS {
                    return score_with_airtime(
                        &outcome,
                        &payload,
                        scenario.tx.frame,
                        rc.probes(),
                        airtime_bits,
                        attempts,
                    );
                }
                attempts += 1;
            }
        }
    }
}

fn reduce(severity: usize, mode: Mode, cells: &[RobustCell]) -> RobustRow {
    let n = cells.len().max(1) as f64;
    let mut row = RobustRow {
        severity,
        label: severity_label(severity).to_string(),
        mode: mode.label().to_string(),
        ber: 0.0,
        dp: 0.0,
        goodput_bps: 0.0,
        recovery_rate: 0.0,
        decode_failures: 0,
        resyncs: 0,
        markers_missed: 0,
        corrected: 0,
        selected_rate_bps: 0.0,
        probes: 0,
        retransmits: 0,
    };
    for c in cells {
        row.ber += c.ber;
        row.dp += c.dp;
        row.goodput_bps += c.goodput_bps;
        if c.recovered {
            row.recovery_rate += 1.0;
        }
        if c.decode_failed {
            row.decode_failures += 1;
        }
        row.resyncs += c.resyncs;
        row.markers_missed += c.markers_missed;
        row.corrected += c.corrected;
        row.selected_rate_bps += c.selected_rate_bps;
        row.probes += c.probes;
        row.retransmits += c.retransmits;
    }
    row.ber /= n;
    row.dp /= n;
    row.goodput_bps /= n;
    row.recovery_rate /= n;
    row.selected_rate_bps /= n;
    row
}

/// Runs the full E6 sweep on the standard near-field scenario: every
/// (severity × mode × run) cell in one flattened [`par_map`], reduced
/// serially in grid order.
pub fn robust_sweep(scale: TableScale, seed: u64) -> Vec<RobustRow> {
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    let base = CovertScenario::for_laptop(&laptop, chain);

    let cells: Vec<(usize, usize, usize)> = (0..SEVERITY_LEVELS)
        .flat_map(|s| {
            MODES.iter().enumerate().flat_map(move |(m, _)| (0..scale.runs).map(move |r| (s, m, r)))
        })
        .collect();
    let stats = par_map(&cells, |&(sev, m, run)| {
        robust_cell(&base, scale.payload_bytes, seed, MODES[m], sev, run, scale.runs)
    });
    let mut rows = Vec::with_capacity(SEVERITY_LEVELS * MODES.len());
    for s in 0..SEVERITY_LEVELS {
        for (m, &mode) in MODES.iter().enumerate() {
            let at = (s * MODES.len() + m) * scale.runs;
            rows.push(reduce(s, mode, &stats[at..at + scale.runs]));
        }
    }
    rows
}

/// Renders the sweep: one row per (severity × mode).
pub fn render_robust_rows(rows: &[RobustRow]) -> String {
    super::render_table(
        "E6: deletion robustness — rigid vs. marker vs. adaptive (Dell Inspiron, near-field)",
        &[
            "Severity",
            "Stack",
            "Mode",
            "BER",
            "DP",
            "Goodput b/s",
            "Recovery",
            "Lost",
            "Resyncs",
            "Rate b/s",
            "Probes",
            "ReTx",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.severity.to_string(),
                    r.label.clone(),
                    r.mode.clone(),
                    super::fmt_prob(r.ber),
                    super::fmt_prob(r.dp),
                    format!("{:.0}", r.goodput_bps),
                    format!("{:.2}", r.recovery_rate),
                    r.decode_failures.to_string(),
                    r.resyncs.to_string(),
                    format!("{:.0}", r.selected_rate_bps),
                    r.probes.to_string(),
                    r.retransmits.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [RobustRow], severity: usize, mode: &str) -> &'a RobustRow {
        rows.iter().find(|r| r.severity == severity && r.mode == mode).expect("row exists")
    }

    #[test]
    fn clean_channel_every_mode_delivers() {
        let rows = robust_sweep(TableScale::quick(), 19);
        assert_eq!(rows.len(), SEVERITY_LEVELS * MODES.len());
        for mode in ["rigid", "marker", "adaptive"] {
            let r = row(&rows, 0, mode);
            assert!(r.recovery_rate > 0.99, "{mode} failed on a clean channel: {r:?}");
            assert!(r.goodput_bps > 0.0, "{mode} clean goodput {}", r.goodput_bps);
        }
        // On a clean channel the controller must hold the fastest rung:
        // its rate matches the rigid mode's.
        let rigid = row(&rows, 0, "rigid");
        let adaptive = row(&rows, 0, "adaptive");
        let ratio = adaptive.selected_rate_bps / rigid.selected_rate_bps;
        assert!((0.8..1.25).contains(&ratio), "clean adaptive rate drifted: ratio {ratio}");
    }

    #[test]
    fn severe_deletions_kill_rigid_but_not_marker_or_adaptive() {
        let rows = robust_sweep(TableScale::quick(), 19);
        let worst = SEVERITY_LEVELS - 1;
        let rigid = row(&rows, worst, "rigid");
        assert_eq!(
            rigid.goodput_bps, 0.0,
            "rigid framing must deliver nothing through the severity-4 gap"
        );
        assert!(rigid.decode_failures > 0);
        let marker = row(&rows, worst, "marker");
        assert!(
            marker.goodput_bps > 0.0,
            "marker coding must recover bits where rigid delivers zero: {marker:?}"
        );
        let adaptive = row(&rows, worst, "adaptive");
        assert!(adaptive.goodput_bps > 0.0, "adaptive must deliver at severity 4: {adaptive:?}");
        // The controller must have backed off: strictly lower rate at
        // severity 4 than on the clean channel, after at least one
        // probe failure.
        let clean_adaptive = row(&rows, 0, "adaptive");
        assert!(
            adaptive.selected_rate_bps < clean_adaptive.selected_rate_bps,
            "adaptive rate did not back off: {} vs {}",
            adaptive.selected_rate_bps,
            clean_adaptive.selected_rate_bps
        );
        assert!(adaptive.probes > clean_adaptive.probes, "backing off costs probes");
    }
}
