//! Table IV: keylogging accuracy at three distances.

use emsc_runtime::par_map;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::chain::{Chain, Setup};
use crate::keylog_run::KeylogScenario;
use crate::laptop::Laptop;

/// One Table IV row.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KeylogRow {
    /// Setup label.
    pub label: String,
    /// Character detection true-positive rate.
    pub tpr: f64,
    /// Character detection false-positive rate.
    pub fpr: f64,
    /// Word-length precision.
    pub precision: f64,
    /// Word recall.
    pub recall: f64,
    /// Number of keystrokes in the ground truth.
    pub keystrokes: usize,
}

/// Scale of the typing experiment. The paper types 1000 random words
/// (~20 minutes of capture); full scale here is 60 words — enough for
/// stable rates while keeping the simulated RF tractable (the
/// substitution is documented in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeylogScale {
    /// Number of random words typed.
    pub words: usize,
}

impl KeylogScale {
    /// Fast scale for unit tests.
    pub fn quick() -> Self {
        KeylogScale { words: 6 }
    }

    /// Harness scale.
    pub fn paper() -> Self {
        KeylogScale { words: 60 }
    }
}

/// Generates pseudo-random typing-test text: `words` words of 2–8
/// lowercase letters (the livechatinc typing-test distribution the
/// paper sampled is similar).
pub fn random_text(words: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    for w in 0..words {
        if w > 0 {
            out.push(' ');
        }
        let len = rng.gen_range(2..=8);
        for _ in 0..len {
            out.push((b'a' + rng.gen_range(0..26)) as char);
        }
    }
    out
}

/// Runs one Table IV row. Longer sessions (> ~15 words) use the
/// chunked runner so the capture never materialises whole.
pub fn table4_row(setup: Setup, label: &str, scale: KeylogScale, seed: u64) -> KeylogRow {
    let laptop = Laptop::dell_precision(); // the §V-C laptop
    let chain = Chain::new(&laptop, setup);
    let scenario = KeylogScenario::standard(chain);
    let text = random_text(scale.words, seed);
    if scale.words > 15 {
        let outcome = scenario.run_chunked(&text, seed, 2.0);
        KeylogRow {
            label: label.to_string(),
            tpr: outcome.chars.tpr(),
            fpr: outcome.chars.fpr(),
            precision: outcome.words.precision(),
            recall: outcome.words.recall(),
            keystrokes: outcome.keystrokes.len(),
        }
    } else {
        let outcome = scenario.run(&text, seed);
        KeylogRow {
            label: label.to_string(),
            tpr: outcome.chars.tpr(),
            fpr: outcome.chars.fpr(),
            precision: outcome.words.precision(),
            recall: outcome.words.recall(),
            keystrokes: outcome.keystrokes.len(),
        }
    }
}

/// Table IV: the three distances of §V-C, measured concurrently (each
/// row's chunked capture further parallelises when run alone).
pub fn table4(scale: KeylogScale, seed: u64) -> Vec<KeylogRow> {
    let settings: [(Setup, &str); 3] = [
        (Setup::NearField, "10 cm"),
        (Setup::LineOfSight(2.0), "2 m"),
        (Setup::ThroughWall, "1.5 m (with wall)"),
    ];
    par_map(&settings, |&(setup, label)| table4_row(setup, label, scale, seed))
}

/// Renders Table IV.
pub fn render_table4(rows: &[KeylogRow]) -> String {
    super::render_table(
        "Table IV — keylogging accuracy",
        &["Distance", "Char TPR", "Char FPR", "Word precision", "Word recall", "keystrokes"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    format!("{:.0}%", r.tpr * 100.0),
                    format!("{:.1}%", r.fpr * 100.0),
                    format!("{:.0}%", r.precision * 100.0),
                    format!("{:.0}%", r.recall * 100.0),
                    r.keystrokes.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_text_has_requested_words() {
        let t = random_text(12, 5);
        assert_eq!(t.split_whitespace().count(), 12);
        assert!(t.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
        assert_eq!(random_text(12, 5), t, "deterministic");
        assert_ne!(random_text(12, 6), t);
    }

    #[test]
    fn near_field_row_matches_paper_shape() {
        let row = table4_row(Setup::NearField, "10 cm", KeylogScale::quick(), 3);
        assert!(row.tpr > 0.9, "TPR {}", row.tpr);
        assert!(row.fpr < 0.2, "FPR {}", row.fpr);
        assert!(row.recall > 0.6, "recall {}", row.recall);
    }

    #[test]
    fn render_includes_all_rows() {
        let rows = vec![
            KeylogRow {
                label: "10 cm".into(),
                tpr: 1.0,
                fpr: 0.03,
                precision: 0.71,
                recall: 1.0,
                keystrokes: 100,
            },
            KeylogRow {
                label: "2 m".into(),
                tpr: 0.99,
                fpr: 0.018,
                precision: 0.70,
                recall: 1.0,
                keystrokes: 100,
            },
        ];
        let s = render_table4(&rows);
        assert!(s.contains("10 cm") && s.contains("2 m"));
        assert!(s.contains("100%"));
    }
}
