//! Spectrogram experiments: Fig. 2, the §III BIOS sweep, and Fig. 11.

use emsc_pmu::workload::Program;
use emsc_runtime::par_map;
use emsc_sdr::stats::quantile;
use emsc_sdr::stft::{stft, Spectrogram, StftConfig};
use emsc_sdr::window::Window;

use crate::chain::{Chain, Setup};
use crate::countermeasure::Countermeasure;
use crate::keylog_run::KeylogScenario;
use crate::laptop::Laptop;

/// Scale of a spectral experiment (tests use `quick`, the harness
/// uses `paper`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast configuration for unit tests.
    Quick,
    /// Full configuration for the reproduction harness.
    Paper,
}

/// Fig. 2 output: the spectrogram of the alternating micro-benchmark.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// The measured spectrogram.
    pub spectrogram: Spectrogram,
    /// The switching frequency located by peak detection, hertz (RF).
    pub detected_f_sw_hz: f64,
    /// The configured switching frequency, hertz.
    pub true_f_sw_hz: f64,
    /// Spike on/off contrast at `f_sw` (q90/q10 of the bin series).
    pub spike_contrast: f64,
    /// Spike contrast at the first harmonic.
    pub harmonic_contrast: f64,
}

impl Fig2 {
    /// ASCII rendering of the spectrogram (time ↓, frequency →).
    pub fn render(&self) -> String {
        let lo = -1.2e6;
        let hi = 1.2e6;
        let mut s = format!(
            "Fig. 2 — spectrogram, alternating active/idle (f_sw = {:.0} kHz, detected {:.0} kHz)\n",
            self.true_f_sw_hz / 1e3,
            self.detected_f_sw_hz / 1e3
        );
        s.push_str(&format!(
            "spike contrast: fundamental {:.1}x, first harmonic {:.1}x\n",
            self.spike_contrast, self.harmonic_contrast
        ));
        s.push_str(&self.spectrogram.to_ascii(lo, hi, 96, 24));
        s
    }
}

/// Runs the Fig. 2 experiment: the Fig. 1 micro-benchmark alternating
/// `t1 = t2 = 5 ms`, captured near-field on the Dell Inspiron.
pub fn fig2(scale: Scale, seed: u64) -> Fig2 {
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    fig2_on(&chain, laptop.switching_freq_hz, scale, seed)
}

/// Fig. 2 on an arbitrary chain (used by the BIOS sweep).
pub fn fig2_on(chain: &Chain, f_sw: f64, scale: Scale, seed: u64) -> Fig2 {
    let reps = match scale {
        Scale::Quick => 8,
        Scale::Paper => 40,
    };
    let ips = chain.machine.steady_state_ips();
    let program = Program::alternating(5e-3, 5e-3, reps, ips);
    let run = chain.run_program(&program, seed);
    let spec = stft(
        &run.capture.samples,
        run.capture.sample_rate,
        &StftConfig::new(1024, 1024, Window::Hann),
    );
    let detected = spec
        .dominant_bin_in(run.capture.baseband(200e3), run.capture.baseband(1.2e6))
        .map(|k| {
            emsc_sdr::fft::bin_frequency(k, 1024, run.capture.sample_rate) + run.capture.center_freq
        })
        .unwrap_or(0.0);
    let contrast_at = |f_rf: f64| {
        let series = spec.band_energy(&[run.capture.baseband(f_rf)]);
        let lo = quantile(&series, 0.10).max(1e-30);
        let hi = quantile(&series, 0.90);
        hi / lo
    };
    Fig2 {
        detected_f_sw_hz: detected,
        true_f_sw_hz: f_sw,
        spike_contrast: contrast_at(f_sw),
        harmonic_contrast: contrast_at(2.0 * f_sw),
        spectrogram: spec,
    }
}

/// One row of the §III BIOS sweep.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BiosRow {
    /// Configuration label.
    pub config: String,
    /// Median spike level at `f_sw` (arbitrary units).
    pub spike_level: f64,
    /// On/off contrast (q90/q10) of the spike.
    pub contrast: f64,
}

/// The §III experiment: re-run Fig. 2 with C-states and/or P-states
/// disabled in the BIOS. Expected shape: either alone keeps the
/// modulation; both disabled leaves a *strong but constant* spike.
pub fn fig2_bios(scale: Scale, seed: u64) -> Vec<BiosRow> {
    let laptop = Laptop::dell_inspiron();
    let f_sw = laptop.switching_freq_hz;
    let configs: Vec<(String, Chain)> = vec![
        ("all power states enabled".into(), Chain::new(&laptop, Setup::NearField)),
        (
            Countermeasure::DisableCStates.label(),
            Countermeasure::DisableCStates.apply(Chain::new(&laptop, Setup::NearField)),
        ),
        (
            Countermeasure::DisablePStates.label(),
            Countermeasure::DisablePStates.apply(Chain::new(&laptop, Setup::NearField)),
        ),
        (
            Countermeasure::DisableBoth.label(),
            Countermeasure::DisableBoth.apply(Chain::new(&laptop, Setup::NearField)),
        ),
    ];
    // Four independent captures — one pool cell each.
    par_map(&configs, |(config, chain)| {
        let f = fig2_on(chain, f_sw, scale, seed);
        let series = f.spectrogram.band_energy(&[f_sw - chain.scene.synth.center_freq]);
        BiosRow {
            config: config.clone(),
            spike_level: quantile(&series, 0.5),
            contrast: f.spike_contrast,
        }
    })
}

/// Renders the BIOS sweep as a table.
pub fn render_bios(rows: &[BiosRow]) -> String {
    super::render_table(
        "§III — BIOS power-state sweep (spike level and on/off contrast at f_sw)",
        &["configuration", "median spike level", "contrast (q90/q10)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.config.clone(),
                    format!("{:.1}", r.spike_level),
                    format!("{:.1}x", r.contrast),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Fig. 11 output: keylogging spectrogram while typing a sentence.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// The spectrogram.
    pub spectrogram: Spectrogram,
    /// The sentence typed.
    pub text: String,
    /// Ground-truth keystroke press times, seconds.
    pub keystroke_times: Vec<f64>,
    /// Detected burst start times, seconds.
    pub detected_times: Vec<f64>,
}

impl Fig11 {
    /// ASCII rendering: per-keystroke spikes over time.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Fig. 11 — PMU emanations while typing \"{}\" ({} keystrokes, {} detected)\n",
            self.text,
            self.keystroke_times.len(),
            self.detected_times.len()
        );
        s.push_str(&self.spectrogram.to_ascii(-1.0e6, 1.0e6, 96, 32));
        s
    }
}

/// Runs Fig. 11: the Dell Precision typing "can you hear me" at
/// near field.
pub fn fig11(seed: u64) -> Fig11 {
    let text = "can you hear me";
    let laptop = Laptop::dell_precision();
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = KeylogScenario::standard(chain);
    let outcome = scenario.run(text, seed);
    let spec = stft(
        &outcome.chain_run.capture.samples,
        outcome.chain_run.capture.sample_rate,
        &StftConfig::new(1024, 8192, Window::Hann),
    );
    Fig11 {
        spectrogram: spec,
        text: text.to_string(),
        keystroke_times: outcome.keystrokes.iter().map(|k| k.press_s).collect(),
        detected_times: outcome.detection.bursts.iter().map(|b| b.start_s).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_finds_the_switching_frequency() {
        let f = fig2(Scale::Quick, 3);
        let err = (f.detected_f_sw_hz - f.true_f_sw_hz).abs();
        assert!(err < 5e3, "detected {} vs true {}", f.detected_f_sw_hz, f.true_f_sw_hz);
    }

    #[test]
    fn fig2_spikes_alternate() {
        let f = fig2(Scale::Quick, 3);
        assert!(f.spike_contrast > 5.0, "fundamental contrast {}", f.spike_contrast);
        assert!(f.harmonic_contrast > 3.0, "harmonic contrast {}", f.harmonic_contrast);
    }

    #[test]
    fn fig2_renders() {
        let s = fig2(Scale::Quick, 3).render();
        assert!(s.contains("Fig. 2"));
        assert!(s.lines().count() > 5);
    }

    #[test]
    fn bios_sweep_matches_section_iii() {
        let rows = fig2_bios(Scale::Quick, 3);
        assert_eq!(rows.len(), 4);
        let baseline = &rows[0];
        let no_c = &rows[1];
        let no_p = &rows[2];
        let both = &rows[3];
        // Either alone: modulation survives.
        assert!(no_c.contrast > 3.0, "no-C contrast {}", no_c.contrast);
        assert!(no_p.contrast > 3.0, "no-P contrast {}", no_p.contrast);
        // Both disabled: spikes strong but constant.
        assert!(both.contrast < 2.0, "both-off contrast {}", both.contrast);
        assert!(
            both.spike_level > 3.0 * baseline.spike_level,
            "both-off level {} vs baseline {}",
            both.spike_level,
            baseline.spike_level
        );
    }
}
