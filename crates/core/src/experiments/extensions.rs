//! Extension experiments — attacks the paper describes but does not
//! evaluate (§III attack model (ii)).

use emsc_fingerprint::classify::{leave_one_out, Confusion, LabeledVisit};
use emsc_keylog::identify::search_space_reduction;
use emsc_keylog::typist::Typist;

use crate::chain::{Chain, Setup};
use crate::fingerprint_run::FingerprintScenario;
use crate::keylog_run::KeylogScenario;
use crate::laptop::Laptop;

/// Website-fingerprinting result (extension experiment E1).
#[derive(Debug, Clone)]
pub struct FingerprintResult {
    /// Leave-one-out confusion matrix.
    pub confusion: Confusion,
    /// Overall accuracy.
    pub accuracy: f64,
    /// Chance level.
    pub chance: f64,
    /// Visits per site observed.
    pub visits_per_site: usize,
}

impl FingerprintResult {
    /// Renders the result.
    pub fn render(&self) -> String {
        format!(
            "E1 — website fingerprinting at 2 m: accuracy {:.0} % (chance {:.0} %), {} visits/site\n{}",
            self.accuracy * 100.0,
            self.chance * 100.0,
            self.visits_per_site,
            self.confusion.render()
        )
    }
}

/// Runs the website-fingerprinting extension: the bundled site
/// library observed from 2 m on the Dell Precision.
pub fn fingerprint_accuracy(visits_per_site: usize, seed: u64) -> FingerprintResult {
    let laptop = Laptop::dell_precision();
    let chain = Chain::new(&laptop, Setup::LineOfSight(2.0));
    let scenario = FingerprintScenario::standard(chain, emsc_fingerprint::site_library());
    let outcome = scenario.run(visits_per_site, seed);
    let labelled: Vec<LabeledVisit> = outcome
        .visits
        .iter()
        .filter_map(|v| {
            v.features.map(|features| LabeledVisit { label: v.label.clone(), features })
        })
        .collect();
    let k = visits_per_site.saturating_sub(1).clamp(1, 3);
    let confusion = leave_one_out(&labelled, k);
    FingerprintResult {
        accuracy: confusion.accuracy(),
        chance: outcome.chance,
        confusion,
        visits_per_site,
    }
}

/// Timing-analysis result (extension experiment E2): how many bits of
/// key-guessing work the detected inter-key intervals reveal.
#[derive(Debug, Clone)]
pub struct TimingResult {
    /// Keystrokes detected.
    pub keystrokes: usize,
    /// Total entropy gain over the sequence, bits.
    pub total_bits: f64,
    /// Mean gain per interval, bits.
    pub bits_per_interval: f64,
}

impl TimingResult {
    /// Renders the result.
    pub fn render(&self) -> String {
        format!(
            "E2 — keystroke-timing analysis: {} keystrokes ⇒ {:.1} bits of guessing work revealed ({:.2} bits/interval)",
            self.keystrokes, self.total_bits, self.bits_per_interval
        )
    }
}

/// Runs the timing-analysis extension over a detected keystroke
/// stream (the §V-B search-space reduction).
pub fn timing_analysis(text: &str, seed: u64) -> TimingResult {
    let laptop = Laptop::dell_precision();
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = KeylogScenario::standard(chain);
    let outcome = scenario.run(text, seed);
    let times: Vec<f64> = outcome.detection.bursts.iter().map(|b| b.start_s).collect();
    let r = search_space_reduction(&Typist::default(), &times, 0.2);
    TimingResult {
        keystrokes: times.len(),
        total_bits: r.total_bits,
        bits_per_interval: r.total_bits / r.per_interval_bits.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprinting_beats_chance() {
        let r = fingerprint_accuracy(2, 5);
        assert!(r.accuracy > 1.5 * r.chance, "accuracy {} chance {}", r.accuracy, r.chance);
        assert!(r.render().contains("E1"));
    }

    #[test]
    fn timing_analysis_reveals_entropy() {
        let r = timing_analysis("secret passphrase", 5);
        assert!(r.keystrokes >= 15, "keystrokes {}", r.keystrokes);
        assert!(r.total_bits > 5.0, "gain {}", r.total_bits);
        assert!(r.render().contains("bits"));
    }
}
