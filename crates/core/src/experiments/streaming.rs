//! E4: multi-tenant streaming sessions vs. the batch pipeline.
//!
//! M sensors' captures — the six Table I laptops carrying covert
//! transmissions, a keylogging sensor, and a deliberately poisoned
//! (all-NaN) stream — are replayed chunk by chunk, at a different
//! chunk size per sensor, into one [`SessionRegistry`] with a bounded
//! per-session buffer. The registry drains every session across the
//! worker pool; each finished stream is then compared against the
//! batch pipeline run over the same monolithic capture.
//!
//! The experiment demonstrates the three streaming-chain guarantees:
//!
//! 1. **Bit-identity**: every stream's output equals the batch result
//!    exactly, at every chunk size (`matches_batch` on each row);
//! 2. **Isolation**: the poisoned stream surfaces its typed error in
//!    its own row while every neighbour still matches batch;
//! 3. **Determinism**: outputs are invariant to `EMSC_THREADS` and
//!    pump cadence (asserted by the determinism suite).
//!
//! Deterministic: sensor i's capture is synthesised under
//! `seed_for(seed, i)` — the same positional seed the registry
//! derives for the i-th opened session.

use emsc_covert::rx::Receiver;
use emsc_keylog::detect::{Detector, DetectorConfig};
use emsc_runtime::{par_map_indexed, seed_for};
use emsc_sdr::iq::Complex;
use emsc_sdr::Capture;

use crate::chain::{Chain, Setup};
use crate::covert_run::CovertScenario;
use crate::laptop::Laptop;
use crate::session::{SessionOutput, SessionRegistry};

/// Per-session buffer limit used by the replay, samples. Small enough
/// that the larger chunk sizes exercise backpressure on every capture.
pub const BUFFER_LIMIT: usize = 1 << 16;

/// Chunk sizes cycled across sensors (samples per offered chunk).
pub const CHUNK_SIZES: [usize; 4] = [1009, 4096, 9973, 65_536];

/// One sensor's replay, compared against its batch baseline.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StreamingRow {
    /// Sensor label.
    pub sensor: String,
    /// Positional seed the capture was synthesised under (equals the
    /// registry-assigned per-session seed).
    pub seed: u64,
    /// Chunk size this sensor's capture was replayed at.
    pub chunk_samples: usize,
    /// Capture length, samples.
    pub samples: usize,
    /// Chunks the registry's backpressure rejected (each was pumped
    /// and retried).
    pub chunks_rejected: usize,
    /// Whether the streamed output is exactly the batch output
    /// (reports compared field-for-field, errors compared as values).
    pub matches_batch: bool,
    /// Human-readable result: decoded bit count, detected burst
    /// count, or the stream's typed error.
    pub outcome: String,
}

/// What one sensor feeds the registry and how it is checked.
enum Sensor {
    /// A covert transmission captured near-field from a laptop.
    Covert { label: String, rx: emsc_covert::rx::RxConfig, capture: Capture },
    /// A keylogging capture with tone bursts over a noise floor.
    Keylog { label: String, config: DetectorConfig, capture: Capture },
}

/// Synthetic keylogging capture: two keystroke-like tone bursts over
/// a noise floor (the detect-stage shape, without the full chain).
/// Shared with the E5 service soak, which supervises the same sensor
/// shape under fault injection.
pub fn keylog_capture(seed: u64) -> (DetectorConfig, Capture) {
    let fs = 2.4e6_f64;
    let center = 1.455e6;
    let f_sw = 970e3;
    let f_bb = f_sw - center;
    let n = (0.4 * fs) as usize;
    let mut samples = vec![Complex::ZERO; n];
    let mut state = seed | 1;
    for s in samples.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
        *s = Complex::new(0.02 * u, 0.02 * u);
    }
    for &(t0, dur) in &[(0.08, 0.05), (0.25, 0.06)] {
        let a = (t0 * fs) as usize;
        let b = (((t0 + dur) * fs) as usize).min(n);
        for (i, s) in samples.iter_mut().enumerate().take(b).skip(a) {
            *s += Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * f_bb * i as f64 / fs);
        }
    }
    (DetectorConfig::new(f_sw), Capture { samples, sample_rate: fs, center_freq: center })
}

/// Builds the sensor fleet for a base seed: one covert sensor per
/// Table I laptop, one keylogging sensor, one poisoned stream. Sensor
/// i's capture is synthesised under `seed_for(seed, i)`.
fn build_sensors(seed: u64) -> Vec<Sensor> {
    let laptops = Laptop::all();
    let keylog_index = laptops.len() as u64;
    let poison_index = keylog_index + 1;

    let mut sensors: Vec<Sensor> = par_map_indexed(&laptops, |i, laptop| {
        let chain = Chain::new(laptop, Setup::NearField);
        let scenario = CovertScenario::for_laptop(laptop, chain);
        let outcome = scenario.run(b"stream-e4", seed_for(seed, i as u64));
        Sensor::Covert {
            label: laptop.model.to_string(),
            rx: scenario.rx,
            capture: outcome.chain_run.capture,
        }
    });

    let (config, capture) = keylog_capture(seed_for(seed, keylog_index));
    sensors.push(Sensor::Keylog { label: "keylog sensor".to_string(), config, capture });

    // A sensor whose radio went bad mid-run: every sample non-finite.
    // SplitMix-derived seed recorded for the row, content is fixed.
    let _ = seed_for(seed, poison_index);
    let dead = Capture {
        samples: vec![Complex::new(f64::NAN, f64::NAN); 50_000],
        sample_rate: 2.4e6,
        center_freq: 1.455e6,
    };
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = CovertScenario::for_laptop(&laptop, chain);
    sensors.push(Sensor::Covert {
        label: "poisoned stream".to_string(),
        rx: scenario.rx,
        capture: dead,
    });

    sensors
}

/// Replays every sensor's capture through one shared registry and
/// compares each stream against its batch baseline.
pub fn streaming_sessions(seed: u64) -> Vec<StreamingRow> {
    let sensors = build_sensors(seed);
    let mut reg = SessionRegistry::new(seed, BUFFER_LIMIT);

    // Open in fleet order so registry seeds line up positionally.
    let ids: Vec<_> = sensors
        .iter()
        .map(|sensor| match sensor {
            Sensor::Covert { rx, capture, .. } => reg
                .open_covert(rx.clone(), capture.sample_rate, capture.center_freq)
                .expect("covert sensor admits"),
            Sensor::Keylog { config, capture, .. } => reg
                .open_keylog(config.clone(), capture.sample_rate, capture.center_freq)
                .expect("keylog sensor admits"),
        })
        .collect();

    // Interleave the replays sensor-by-sensor, chunk-round by
    // chunk-round, so the registry genuinely multiplexes: every pump
    // drains several tenants at once.
    let mut offsets = vec![0usize; sensors.len()];
    loop {
        let mut progressed = false;
        for (k, sensor) in sensors.iter().enumerate() {
            let samples = match sensor {
                Sensor::Covert { capture, .. } | Sensor::Keylog { capture, .. } => &capture.samples,
            };
            if offsets[k] >= samples.len() {
                continue;
            }
            let chunk_len = CHUNK_SIZES[k % CHUNK_SIZES.len()];
            let end = (offsets[k] + chunk_len).min(samples.len());
            let chunk = &samples[offsets[k]..end];
            while reg.offer(ids[k], chunk).is_err() {
                reg.pump();
            }
            offsets[k] = end;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    reg.pump();

    sensors
        .iter()
        .zip(&ids)
        .enumerate()
        .map(|(k, (sensor, &id))| {
            let closed = reg.finish(id).expect("session closes");
            let (label, samples, matches_batch, outcome) = match sensor {
                Sensor::Covert { label, rx, capture } => {
                    let batch = Receiver::new(rx.clone()).receive(capture);
                    let outcome = match &closed.output {
                        SessionOutput::Covert(Ok(r)) => format!("bits={}", r.bits.len()),
                        SessionOutput::Covert(Err(e)) => format!("error: {e}"),
                        other => format!("wrong stream type: {other:?}"),
                    };
                    let matches = closed.output == SessionOutput::Covert(batch);
                    (label.clone(), capture.samples.len(), matches, outcome)
                }
                Sensor::Keylog { label, config, capture } => {
                    let batch = Detector::new(config.clone()).try_detect(capture);
                    let outcome = match &closed.output {
                        SessionOutput::Keylog(Ok(r)) => format!("bursts={}", r.bursts.len()),
                        SessionOutput::Keylog(Err(e)) => format!("error: {e}"),
                        other => format!("wrong stream type: {other:?}"),
                    };
                    let matches = closed.output == SessionOutput::Keylog(batch);
                    (label.clone(), capture.samples.len(), matches, outcome)
                }
            };
            StreamingRow {
                sensor: label,
                seed: closed.stats.seed,
                chunk_samples: CHUNK_SIZES[k % CHUNK_SIZES.len()],
                samples,
                chunks_rejected: closed.stats.chunks_rejected,
                matches_batch,
                outcome,
            }
        })
        .collect()
}

/// Renders the replay table.
pub fn render_streaming_rows(rows: &[StreamingRow]) -> String {
    super::render_table(
        "E4: multi-tenant streaming replay vs. batch pipeline",
        &["Sensor", "Chunk", "Samples", "Rejected", "Matches batch", "Outcome"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.sensor.clone(),
                    r.chunk_samples.to_string(),
                    r.samples.to_string(),
                    r.chunks_rejected.to_string(),
                    if r.matches_batch { "yes" } else { "NO" }.to_string(),
                    r.outcome.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stream_matches_batch_and_failures_stay_isolated() {
        let rows = streaming_sessions(2020);
        assert!(rows.len() >= 8, "need at least 8 concurrent streams, got {}", rows.len());
        for row in &rows {
            assert!(row.matches_batch, "{} diverged from batch: {}", row.sensor, row.outcome);
        }
        // The poisoned stream fails with a typed error...
        let poisoned = rows.iter().find(|r| r.sensor == "poisoned stream").expect("poisoned row");
        assert!(poisoned.outcome.contains("error"), "poisoned outcome: {}", poisoned.outcome);
        // ...while every other stream still decodes/detects.
        for row in rows.iter().filter(|r| r.sensor != "poisoned stream") {
            assert!(
                !row.outcome.contains("error"),
                "{} should have survived: {}",
                row.sensor,
                row.outcome
            );
        }
        // Positional seeds: row i was synthesised and registered under
        // seed_for(seed, i).
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.seed, emsc_runtime::seed_for(2020, i as u64), "seed of {}", row.sensor);
        }
        // The bounded buffer actually pushed back somewhere.
        assert!(rows.iter().any(|r| r.chunks_rejected > 0), "backpressure never engaged: {rows:?}");
        // Rendering names every sensor (checked here to avoid a second
        // full fleet run).
        let table = render_streaming_rows(&rows);
        for row in &rows {
            assert!(table.contains(&row.sensor), "missing {}", row.sensor);
        }
    }
}
