//! Covert-channel scenario runner: one call from payload to metrics.

use emsc_covert::adapt::RateStep;
use emsc_covert::frame::{deframe, Deframed, FrameConfig};
use emsc_covert::metrics::{align_semiglobal, Alignment};
use emsc_covert::rx::{Receiver, RxConfig, RxError, RxReport};
use emsc_covert::stream::StreamingReceiver;
use emsc_covert::tx::{Transmitter, TxConfig};
use emsc_pmu::workload::Program;
use emsc_sdr::impair::{apply_all, Impairment};

use crate::chain::{Chain, ChainRun};
use crate::laptop::Laptop;

/// Idle time the chain simulates before and after the transmission,
/// seconds. Keeps the receiver's windows primed and realistic.
pub const LEAD_SILENCE_S: f64 = 2e-3;

/// Busy warm-up the transmitter runs before the first bit, seconds —
/// locks the DVFS governor at its steady state so early bits are not
/// stretched by the ramp (an attacker calibrating LOOP_PERIOD on the
/// live machine gets this for free).
pub const WARMUP_S: f64 = 20e-3;

/// A complete covert-channel exchange and its scoring.
#[derive(Debug, Clone)]
pub struct CovertOutcome {
    /// The bits that went on the air (framed and coded).
    pub tx_bits: Vec<u8>,
    /// The receiver's full report (energy signal, timings, bits, …).
    pub report: RxReport,
    /// Semi-global alignment of transmitted vs. received bits.
    pub alignment: Alignment,
    /// Deframed payload, if the marker was found.
    pub deframed: Option<Deframed>,
    /// Every intermediate chain stage.
    pub chain_run: ChainRun,
    /// Measured transmission rate: on-air bits over the time they took.
    pub transmission_rate_bps: f64,
    /// Why the receiver failed, when it did. `None` for a successful
    /// decode (even an empty one); `Some` means `report` is the empty
    /// placeholder and every received-side metric counts the whole
    /// transmission as lost.
    pub rx_error: Option<RxError>,
}

impl CovertOutcome {
    /// Whether the exact payload was recovered.
    pub fn recovered(&self, payload: &[u8]) -> bool {
        self.deframed.as_ref().is_some_and(|d| d.payload == payload)
    }
}

/// The scoring of a fully streamed covert transfer
/// ([`CovertScenario::run_streamed`]): every received-side metric of
/// [`CovertOutcome`], without the materialised capture or the
/// intermediate chain stages — the capture never existed as one
/// buffer, it was digitised block by block straight into the
/// streaming receiver.
#[derive(Debug, Clone)]
pub struct CovertStreamedOutcome {
    /// The bits that went on the air (framed and coded).
    pub tx_bits: Vec<u8>,
    /// The receiver's full report (energy signal, timings, bits, …).
    pub report: RxReport,
    /// Semi-global alignment of transmitted vs. received bits.
    pub alignment: Alignment,
    /// Deframed payload, if the marker was found.
    pub deframed: Option<Deframed>,
    /// Measured transmission rate: on-air bits over the time they took.
    pub transmission_rate_bps: f64,
    /// Why the receiver failed, when it did (see
    /// [`CovertOutcome::rx_error`]).
    pub rx_error: Option<RxError>,
}

impl CovertStreamedOutcome {
    /// Whether the exact payload was recovered.
    pub fn recovered(&self, payload: &[u8]) -> bool {
        self.deframed.as_ref().is_some_and(|d| d.payload == payload)
    }
}

/// Runs one covert transfer over a chain.
#[derive(Debug, Clone)]
pub struct CovertScenario {
    /// The physical chain.
    pub chain: Chain,
    /// Transmitter parameters.
    pub tx: TxConfig,
    /// Receiver parameters.
    pub rx: RxConfig,
}

impl CovertScenario {
    /// The standard scenario for a laptop: calibrated transmitter
    /// (§IV-C1 timing for its OS) and the batch receiver primed with
    /// the expected bit period.
    pub fn for_laptop(laptop: &Laptop, chain: Chain) -> Self {
        let tx = TxConfig::calibrated_with_overhead(
            &chain.machine,
            laptop.tx_active_period_s(),
            laptop.tx_sleep_period_s(),
            laptop.tx_overhead_s(),
        );
        let expected_bit = tx.expected_bit_period_on(&chain.machine);
        let mut rx = RxConfig::new(chain.switching_freq_hz(), expected_bit);
        if laptop.os == crate::laptop::Os::Windows {
            // Windows bits are millisecond-scale: a narrower edge
            // kernel resolves the wake+housekeeping blip at 0-bit
            // starts, and the higher peak bar rejects interrupt wakes
            // (which lack the heavy Sleep-call housekeeping).
            rx.edge_kernel_fraction = 0.2;
            rx.peak_threshold_frac = 0.45;
            // First-pass coverage is near-total at millisecond bits;
            // the second pass would mostly admit interrupt bumps.
            rx.gap_fill = false;
        }
        CovertScenario { chain, tx, rx }
    }

    /// Transmits `payload` and demodulates it; deterministic per seed.
    pub fn run(&self, payload: &[u8], seed: u64) -> CovertOutcome {
        self.run_impaired(payload, seed, &[], 0)
    }

    /// Like [`CovertScenario::run`], but corrupts the capture with the
    /// given channel impairments (via [`emsc_sdr::impair::apply_all`]
    /// under `impair_seed`) before handing it to the receiver. With an
    /// empty impairment list this is exactly [`CovertScenario::run`].
    pub fn run_impaired(
        &self,
        payload: &[u8],
        seed: u64,
        impairments: &[Impairment],
        impair_seed: u64,
    ) -> CovertOutcome {
        let transmitter = Transmitter::new(self.tx);
        let tx_bits = transmitter.on_air_bits(payload);

        let mut program = Program::new();
        program.sleep(LEAD_SILENCE_S);
        program.busy(self.chain.machine.iterations_for_duration(WARMUP_S));
        program.extend(transmitter.program_for_bits(&tx_bits).ops().iter().copied());
        program.sleep(LEAD_SILENCE_S);

        let mut chain_run = self.chain.run_program(&program, seed);
        apply_all(&mut chain_run.capture, impairments, impair_seed);
        let receiver = Receiver::new(self.rx.clone());
        // A decode failure (truncated / corrupt / carrier-less capture)
        // degrades to the empty report so the scenario still yields an
        // outcome — the grid cell records the error instead of
        // panicking the whole experiment.
        let (report, rx_error) = match receiver.receive(&chain_run.capture) {
            Ok(r) => (r, None),
            Err(e) => (RxReport::empty(0.0), Some(e)),
        };
        let alignment = align_semiglobal(&tx_bits, &report.bits);
        let deframed = deframe(&report.bits, self.tx.frame, 1);

        // Rate: on-air bits over the air time they actually took.
        let air_time = chain_run.trace.duration_s() - 2.0 * LEAD_SILENCE_S - WARMUP_S;
        let transmission_rate_bps =
            if air_time > 0.0 { tx_bits.len() as f64 / air_time } else { 0.0 };

        CovertOutcome {
            tx_bits,
            report,
            alignment,
            deframed,
            chain_run,
            transmission_rate_bps,
            rx_error,
        }
    }

    /// [`CovertScenario::run`] without ever materialising the capture:
    /// the fused chain ([`Chain::stream_trace`]) digitises block by
    /// block into the chunk-oblivious [`StreamingReceiver`], so the
    /// run's peak resident sample count is the analog arena plus one
    /// block instead of analog + capture. Bit-identical metrics to the
    /// unimpaired batch path for the same `(payload, seed)`.
    pub fn run_streamed(&self, payload: &[u8], seed: u64) -> CovertStreamedOutcome {
        let transmitter = Transmitter::new(self.tx);
        let tx_bits = transmitter.on_air_bits(payload);

        let mut program = Program::new();
        program.sleep(LEAD_SILENCE_S);
        program.busy(self.chain.machine.iterations_for_duration(WARMUP_S));
        program.extend(transmitter.program_for_bits(&tx_bits).ops().iter().copied());
        program.sleep(LEAD_SILENCE_S);

        let mut stream = self.chain.stream_program(&program, seed);
        let sample_rate = self.chain.frontend.sample_rate;
        let center_freq = self.chain.frontend.center_freq;
        // Decode failures degrade to the empty report exactly as in
        // the batch path, whether they surface at construction (bad
        // config / rate / carrier) or at finish.
        let (report, rx_error) =
            match StreamingReceiver::new(self.rx.clone(), sample_rate, center_freq) {
                Ok(mut receiver) => {
                    while let Some(block) = stream.next_block() {
                        receiver.push(block);
                    }
                    match receiver.finish() {
                        Ok(r) => (r, None),
                        Err(e) => (RxReport::empty(0.0), Some(e)),
                    }
                }
                Err(e) => (RxReport::empty(0.0), Some(e)),
            };
        let (trace, _train) = stream.into_trace_train();
        let alignment = align_semiglobal(&tx_bits, &report.bits);
        let deframed = deframe(&report.bits, self.tx.frame, 1);

        let air_time = trace.duration_s() - 2.0 * LEAD_SILENCE_S - WARMUP_S;
        let transmission_rate_bps =
            if air_time > 0.0 { tx_bits.len() as f64 / air_time } else { 0.0 };

        CovertStreamedOutcome {
            tx_bits,
            report,
            alignment,
            deframed,
            transmission_rate_bps,
            rx_error,
        }
    }

    /// Transmits a raw, already-framed bit sequence (e.g. the output
    /// of [`emsc_covert::packets::packetize`]) and returns the
    /// demodulated bits plus the receiver report. No deframing is
    /// attempted — the caller owns the framing.
    pub fn run_bits(&self, bits: &[u8], seed: u64) -> (Vec<u8>, RxReport) {
        let transmitter = Transmitter::new(self.tx);
        let mut program = Program::new();
        program.sleep(LEAD_SILENCE_S);
        program.busy(self.chain.machine.iterations_for_duration(WARMUP_S));
        program.extend(transmitter.program_for_bits(bits).ops().iter().copied());
        program.sleep(LEAD_SILENCE_S);
        let chain_run = self.chain.run_program(&program, seed);
        let receiver = Receiver::new(self.rx.clone());
        let report = receiver.demodulate(&chain_run.capture);
        (report.bits.clone(), report)
    }

    /// Framing used by the transmitter.
    pub fn frame(&self) -> FrameConfig {
        self.tx.frame
    }

    /// The same physical chain operated at a rung of the adaptive rate
    /// ladder: the transmitter clock is stretched by the step's factor
    /// and the step's coding armour (marker layer, interleaving)
    /// replaces the frame's, while the receiver is re-primed with the
    /// bit period the stretched transmitter actually produces on this
    /// machine.
    pub fn at_rate_step(&self, step: &RateStep) -> CovertScenario {
        let mut tx = self.tx.stretched(step.stretch);
        tx.frame.marker = step.marker;
        tx.frame.interleave_depth = step.interleave_depth;
        let expected_bit = tx.expected_bit_period_on(&self.chain.machine);
        CovertScenario { chain: self.chain.clone(), tx, rx: self.rx.with_bit_period(expected_bit) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Setup;

    #[test]
    fn near_field_transfer_recovers_payload() {
        let laptop = Laptop::dell_inspiron();
        let chain = Chain::new(&laptop, Setup::NearField);
        let scenario = CovertScenario::for_laptop(&laptop, chain);
        let payload = b"attack at dawn";
        let outcome = scenario.run(payload, 2024);
        assert!(
            outcome.recovered(payload),
            "payload not recovered: {:?} (BER {:.4}, ins {}, del {})",
            outcome.deframed,
            outcome.alignment.ber(),
            outcome.alignment.insertions,
            outcome.alignment.deletions
        );
        // Short transfers spend a larger fraction of their bits in the
        // DVFS warm-up region, so the BER bound is looser than the
        // long-stream Table II numbers.
        assert!(outcome.alignment.ber() < 0.06, "BER {}", outcome.alignment.ber());
        assert!(outcome.rx_error.is_none(), "unexpected decode failure: {:?}", outcome.rx_error);
    }

    #[test]
    fn streamed_run_matches_batch_run_metrics() {
        let laptop = Laptop::dell_inspiron();
        let chain = Chain::new(&laptop, Setup::NearField);
        let scenario = CovertScenario::for_laptop(&laptop, chain);
        let payload = b"streamed==batch";
        let batch = scenario.run(payload, 31);
        let streamed = scenario.run_streamed(payload, 31);
        assert_eq!(streamed.tx_bits, batch.tx_bits);
        assert_eq!(streamed.report.bits, batch.report.bits);
        assert_eq!(streamed.alignment.ber().to_bits(), batch.alignment.ber().to_bits());
        assert_eq!(streamed.transmission_rate_bps.to_bits(), batch.transmission_rate_bps.to_bits());
        assert!(streamed.recovered(payload));
        assert!(streamed.rx_error.is_none());
    }

    #[test]
    fn unix_laptop_reaches_kbps_class_rates() {
        let laptop = Laptop::macbook_pro_2015();
        let chain = Chain::new(&laptop, Setup::NearField);
        let scenario = CovertScenario::for_laptop(&laptop, chain);
        let outcome = scenario.run(b"0123456789abcdef", 11);
        assert!(outcome.transmission_rate_bps > 2000.0, "TR {}", outcome.transmission_rate_bps);
    }

    #[test]
    fn windows_laptop_is_much_slower() {
        let unix = {
            let l = Laptop::dell_inspiron();
            let s = CovertScenario::for_laptop(&l, Chain::new(&l, Setup::NearField));
            s.run(b"windows-vs-unix", 5).transmission_rate_bps
        };
        let win = {
            let l = Laptop::dell_precision();
            let s = CovertScenario::for_laptop(&l, Chain::new(&l, Setup::NearField));
            s.run(b"windows-vs-unix", 5).transmission_rate_bps
        };
        assert!(win < 1300.0, "windows TR {win}");
        assert!(unix > 2.0 * win, "unix {unix} vs windows {win}");
    }
}
