//! Deterministic fault plans for the capture supervisor.
//!
//! A long-running listening post fails in a handful of characteristic
//! ways: the SDR disconnects (USB re-enumeration), the stream stalls
//! (a wedged driver), transfers arrive truncated or reordered, and a
//! dying front end pollutes its samples with garbage. [`FaultPlan`]
//! encodes such a failure history as an explicit, seed-derivable
//! schedule of [`FaultEvent`]s on the supervisor's simulated clock, so
//! an entire soak run — faults, restarts, backoff jitter and all — is
//! a pure function of `(plan, seed)` and replays bit-identically.
//!
//! Faults are injected *between* a sensor's source and the session
//! registry: the supervisor corrupts the delivery, never the DSP
//! state, which mirrors where these failures occur physically (on the
//! USB wire and in the tuner, not in the maths).

use emsc_runtime::seed_for;

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The source read fails this tick, as an unplugged device would:
    /// the supervisor sees a retryable read error and must abort the
    /// session and restart per policy.
    Disconnect,
    /// The source delivers nothing for `ticks` ticks — a wedged
    /// driver. Stalls longer than the sensor's watchdog timeout get
    /// the stream declared dead.
    Stall {
        /// Ticks of silence.
        ticks: u64,
    },
    /// The next chunk loses its tail: only `keep_frac` of its samples
    /// are delivered (a truncated USB transfer). Desynchronises bit
    /// timing downstream — a deletion, never a crash.
    TruncateChunk {
        /// Fraction of the chunk kept, clamped to `[0, 1]`.
        keep_frac: f64,
    },
    /// The next `chunks` chunks arrive corrupted: a seeded `nan_frac`
    /// of their samples are replaced with NaN (a flaky front end).
    CorruptBurst {
        /// Number of consecutive corrupted chunks.
        chunks: u32,
        /// Fraction of samples NaN'd per corrupted chunk, clamped to
        /// `[0, 1]`.
        nan_frac: f64,
    },
    /// The next `chunks` chunks are silently lost in transit (dropped
    /// USB transfers).
    DropChunks {
        /// Number of chunks lost.
        chunks: u32,
    },
    /// The next two chunks are delivered in swapped order (reordered
    /// transfer completion).
    ReorderNext,
    /// The sensor's front end dies for good: every subsequent chunk is
    /// all-NaN until the end of the run. Restarting cannot help, so a
    /// supervisor with a bounded restart budget ends up quarantining
    /// the sensor.
    Poison,
}

impl Fault {
    /// Short label used in event logs and fault summaries.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::Disconnect => "disconnect",
            Fault::Stall { .. } => "stall",
            Fault::TruncateChunk { .. } => "truncate",
            Fault::CorruptBurst { .. } => "corrupt",
            Fault::DropChunks { .. } => "drop",
            Fault::ReorderNext => "reorder",
            Fault::Poison => "poison",
        }
    }
}

/// A fault scheduled against one sensor at one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Tick at which the fault takes effect.
    pub tick: u64,
    /// Index of the targeted sensor (supervisor admission order).
    pub sensor: usize,
    /// What goes wrong.
    pub fault: Fault,
}

/// An ordered schedule of fault events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan from explicit events (stably sorted by tick, so events
    /// at the same tick keep their listed order).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.tick);
        FaultPlan { events }
    }

    /// The empty plan: a fault-free run.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// All scheduled events, in tick order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events that take effect at exactly `tick`.
    pub fn due(&self, tick: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.tick == tick)
    }

    /// Whether any event targets sensor `k`.
    pub fn targets(&self, k: usize) -> bool {
        self.events.iter().any(|e| e.sensor == k)
    }

    /// Human-readable summary of the faults aimed at sensor `k`
    /// (`"truncate@4, disconnect@12"`), or `"-"` for an untargeted
    /// sensor.
    pub fn describe_sensor(&self, k: usize) -> String {
        let parts: Vec<String> = self
            .events
            .iter()
            .filter(|e| e.sensor == k)
            .map(|e| format!("{}@{}", e.fault.label(), e.tick))
            .collect();
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join(", ")
        }
    }

    /// A seeded escalating schedule against `targets`, the shape the
    /// E5 soak uses: four phases of `phase_ticks` ticks starting at
    /// `start_tick`, each strictly nastier than the last —
    ///
    /// 1. **mild**: truncated and dropped chunks,
    /// 2. **moderate**: reordering and NaN corruption bursts,
    /// 3. **heavy**: stalls long enough to trip a watchdog,
    /// 4. **severe**: outright disconnects.
    ///
    /// Each targeted sensor receives one fault per phase at a
    /// seed-jittered tick inside the phase window (`seed_for(seed,
    /// phase·N+i)` — positional, so the plan is independent of
    /// iteration order). [`Fault::Poison`] is deliberately excluded:
    /// it is a sensor death sentence, so callers add it explicitly to
    /// the sensors they mean to kill.
    pub fn escalating(seed: u64, targets: &[usize], start_tick: u64, phase_ticks: u64) -> Self {
        let span = phase_ticks.max(1);
        let mut events = Vec::new();
        for phase in 0..4u64 {
            for (i, &sensor) in targets.iter().enumerate() {
                let jitter = seed_for(seed, phase * targets.len() as u64 + i as u64) % span;
                let tick = start_tick + phase * span + jitter;
                let fault = match phase {
                    0 => {
                        if i % 2 == 0 {
                            Fault::TruncateChunk { keep_frac: 0.6 }
                        } else {
                            Fault::DropChunks { chunks: 1 }
                        }
                    }
                    1 => {
                        if i % 2 == 0 {
                            Fault::ReorderNext
                        } else {
                            Fault::CorruptBurst { chunks: 1, nan_frac: 0.3 }
                        }
                    }
                    2 => Fault::Stall { ticks: 8 + (i as u64 % 3) * 4 },
                    _ => Fault::Disconnect,
                };
                events.push(FaultEvent { tick, sensor, fault });
            }
        }
        FaultPlan::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sorted_and_queryable_by_tick() {
        let plan = FaultPlan::new(vec![
            FaultEvent { tick: 9, sensor: 1, fault: Fault::Disconnect },
            FaultEvent { tick: 2, sensor: 0, fault: Fault::ReorderNext },
            FaultEvent { tick: 9, sensor: 0, fault: Fault::Poison },
        ]);
        let ticks: Vec<u64> = plan.events().iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![2, 9, 9]);
        assert_eq!(plan.due(9).count(), 2);
        assert_eq!(plan.due(3).count(), 0);
        assert!(plan.targets(1));
        assert!(!plan.targets(7));
        assert_eq!(plan.describe_sensor(7), "-");
        assert_eq!(plan.describe_sensor(0), "reorder@2, poison@9");
    }

    #[test]
    fn escalating_plans_are_seed_deterministic() {
        let a = FaultPlan::escalating(2020, &[3, 4, 5], 5, 10);
        let b = FaultPlan::escalating(2020, &[3, 4, 5], 5, 10);
        assert_eq!(a, b);
        let c = FaultPlan::escalating(2021, &[3, 4, 5], 5, 10);
        assert_ne!(a, c, "different seeds must jitter the schedule differently");
    }

    #[test]
    fn escalating_plans_cover_every_target_each_phase_and_never_poison() {
        let targets = [1usize, 2, 6];
        let plan = FaultPlan::escalating(7, &targets, 0, 12);
        assert_eq!(plan.events().len(), 4 * targets.len());
        for &t in &targets {
            let mine: Vec<&FaultEvent> = plan.events().iter().filter(|e| e.sensor == t).collect();
            assert_eq!(mine.len(), 4, "sensor {t} missing a phase");
            assert!(mine.iter().all(|e| e.fault != Fault::Poison));
            // Phases escalate: the last-scheduled fault is the
            // severe-phase disconnect.
            assert_eq!(mine.last().unwrap().fault, Fault::Disconnect);
        }
        // Every event lands inside its phase window.
        for e in plan.events() {
            assert!(e.tick < 4 * 12, "event past the schedule: {e:?}");
        }
    }
}
