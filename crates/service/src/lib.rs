//! `emsc-service`: a supervised, fault-tolerant capture daemon for
//! the EM side-channel listening post.
//!
//! The paper's attack (HPCA 2020, §VI) is not a one-shot capture: it
//! is a radio parked near a victim for hours, and real radios
//! disconnect, stall, truncate transfers and go bad mid-run. This
//! crate turns the streaming receive chain of `emsc_core::session`
//! into a *service* that survives all of that:
//!
//! - [`supervisor::Supervisor`] — the daemon loop: per-sensor
//!   lifecycle (`Running → Degraded → Restarting → Quarantined/Done`),
//!   watchdog timeouts, seeded exponential-backoff restarts, bounded
//!   backpressure queues, session rotation and graceful
//!   drain-and-shutdown;
//! - [`source`] — pluggable sensor sources: in-memory capture replay
//!   and incremental spooled `rtl_sdr` u8 decoding;
//! - [`fault`] — deterministic fault plans (disconnects, stalls,
//!   truncation, corruption, reordering, poison) scheduled on the
//!   simulated clock;
//! - [`policy`] — restart budgets, backoff shapes, watchdog and
//!   backpressure policies;
//! - [`clock`] — the simulated clock every timeout is counted on;
//! - [`soak`] — experiment E5: a ten-sensor soak under an escalating
//!   fault schedule, scored against unfaulted batch references.
//!
//! Nothing here reads wall-clock time or unseeded randomness: a soak
//! run — faults, restarts, backoff jitter, quarantines — is a pure
//! function of `(fleet, plan, seed)` and replays bit-identically at
//! any `EMSC_THREADS` setting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod fault;
pub mod policy;
pub mod soak;
pub mod source;
pub mod supervisor;

pub use clock::SimClock;
pub use fault::{Fault, FaultEvent, FaultPlan};
pub use policy::{BackpressurePolicy, RestartPolicy, SensorPolicy};
pub use soak::{render_soak_rows, soak, SoakOutcome, SoakRow};
pub use source::{ReplaySource, SensorSource, SourceError, SpoolSource};
pub use supervisor::{
    LifecycleState, SensorKind, SensorReport, SensorSpec, ServiceConfig, ServiceEvent,
    ServiceReport, Supervisor,
};
