//! Pluggable sensor sources: where a supervised session's IQ comes
//! from.
//!
//! The supervisor does not care whether a stream originates in a
//! spooled `rtl_sdr` recording, an in-process synthesis chain, or a
//! live socket — it pulls bounded chunks through the [`SensorSource`]
//! trait and feeds them to the session registry. Two implementations
//! ship here:
//!
//! - [`ReplaySource`] replays an in-memory [`Capture`] (the output of
//!   the existing scenario generators) in fixed-size chunks,
//!   optionally looping for session-rotation workloads;
//! - [`SpoolSource`] incrementally decodes a spooled `rtl_sdr`
//!   interleaved-u8 recording via [`RtlChunkReader`], the exact wire
//!   format the paper's $25 dongle writes.
//!
//! Sources are *rewindable*: [`SensorSource::reset`] returns the
//! stream to its beginning, which is what a supervisor restart means
//! for a spooled capture (reopen the file, replay from the top).

use std::io::{self, Cursor, Read};

use emsc_sdr::iq::Complex;
use emsc_sdr::record::{io_error_is_retryable, RtlChunkReader};
use emsc_sdr::Capture;

/// Why a source failed to deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceError {
    /// An I/O error from the underlying reader, classified retryable
    /// or fatal by [`io_error_is_retryable`].
    Io {
        /// The failing operation's error kind.
        kind: io::ErrorKind,
    },
}

impl SourceError {
    /// Whether reopening the source is worth a try (see
    /// [`io_error_is_retryable`]).
    pub fn is_retryable(&self) -> bool {
        match self {
            SourceError::Io { kind } => io_error_is_retryable(*kind),
        }
    }
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Io { kind } => write!(f, "source I/O error: {kind}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<io::Error> for SourceError {
    fn from(e: io::Error) -> Self {
        SourceError::Io { kind: e.kind() }
    }
}

/// A rewindable, chunked IQ stream feeding one supervised sensor.
pub trait SensorSource {
    /// Appends the next chunk of samples to `out`, returning how many
    /// were appended. `Ok(0)` means the stream is exhausted.
    ///
    /// # Errors
    ///
    /// [`SourceError`] when the underlying reader fails; the
    /// supervisor maps retryable errors to a restart and fatal ones
    /// to quarantine.
    fn next_chunk(&mut self, out: &mut Vec<Complex>) -> Result<usize, SourceError>;

    /// Rewinds the stream to its beginning (a supervisor restart).
    ///
    /// # Errors
    ///
    /// [`SourceError`] when the source cannot be reopened.
    fn reset(&mut self) -> Result<(), SourceError>;

    /// Sample rate of the stream, Hz.
    fn sample_rate(&self) -> f64;

    /// Tuner centre frequency of the stream, Hz.
    fn center_freq(&self) -> f64;
}

/// Replays an in-memory capture in fixed-size chunks.
///
/// With `passes > 1` the capture repeats; a chunk never straddles a
/// pass boundary, so a rotation threshold equal to the capture length
/// falls exactly on a replay seam and every rotated session sees one
/// complete, bit-identical copy of the capture.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    capture: Capture,
    chunk: usize,
    offset: usize,
    passes: u32,
    passes_left: u32,
}

impl ReplaySource {
    /// Replays `capture` once in `chunk`-sample pieces (`chunk` is
    /// clamped to at least 1).
    pub fn new(capture: Capture, chunk: usize) -> Self {
        Self::looping(capture, chunk, 1)
    }

    /// Replays `capture` `passes` times (`passes` clamped to at least
    /// 1) — the source shape for session-rotation workloads.
    pub fn looping(capture: Capture, chunk: usize, passes: u32) -> Self {
        let passes = passes.max(1);
        ReplaySource { capture, chunk: chunk.max(1), offset: 0, passes, passes_left: passes }
    }

    /// The capture being replayed.
    pub fn capture(&self) -> &Capture {
        &self.capture
    }
}

impl SensorSource for ReplaySource {
    fn next_chunk(&mut self, out: &mut Vec<Complex>) -> Result<usize, SourceError> {
        if self.offset >= self.capture.samples.len() {
            if self.passes_left <= 1 {
                return Ok(0);
            }
            self.passes_left -= 1;
            self.offset = 0;
            if self.capture.samples.is_empty() {
                return Ok(0);
            }
        }
        let end = (self.offset + self.chunk).min(self.capture.samples.len());
        out.extend_from_slice(&self.capture.samples[self.offset..end]);
        let n = end - self.offset;
        self.offset = end;
        Ok(n)
    }

    fn reset(&mut self) -> Result<(), SourceError> {
        self.offset = 0;
        self.passes_left = self.passes;
        Ok(())
    }

    fn sample_rate(&self) -> f64 {
        self.capture.sample_rate
    }

    fn center_freq(&self) -> f64 {
        self.capture.center_freq
    }
}

/// Incrementally decodes a spooled `rtl_sdr` interleaved-u8 recording,
/// delivering bounded chunks without ever materialising the whole
/// capture.
pub struct SpoolSource {
    bytes: Vec<u8>,
    sample_rate: f64,
    center_freq: f64,
    chunk: usize,
    reader: RtlChunkReader<Cursor<Vec<u8>>>,
    staged: Vec<Complex>,
    staged_at: usize,
}

impl std::fmt::Debug for SpoolSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpoolSource")
            .field("bytes", &self.bytes.len())
            .field("sample_rate", &self.sample_rate)
            .field("center_freq", &self.center_freq)
            .field("chunk", &self.chunk)
            .finish()
    }
}

impl SpoolSource {
    /// A spool over in-memory `rtl_sdr`-format bytes, decoded in
    /// `chunk`-sample pieces. The raw format carries neither sample
    /// rate nor tuner frequency, so the caller supplies both.
    pub fn from_bytes(bytes: Vec<u8>, sample_rate: f64, center_freq: f64, chunk: usize) -> Self {
        let reader = RtlChunkReader::new(Cursor::new(bytes.clone()));
        SpoolSource {
            bytes,
            sample_rate,
            center_freq,
            chunk: chunk.max(1),
            reader,
            staged: Vec::new(),
            staged_at: 0,
        }
    }

    /// A spool over an `rtl_sdr` recording on disk, read fully at open
    /// time (a spool is a finished recording, not a live stream).
    ///
    /// # Errors
    ///
    /// [`SourceError`] when the file cannot be read.
    pub fn from_file(
        path: &std::path::Path,
        sample_rate: f64,
        center_freq: f64,
        chunk: usize,
    ) -> Result<Self, SourceError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Ok(Self::from_bytes(bytes, sample_rate, center_freq, chunk))
    }
}

impl SensorSource for SpoolSource {
    fn next_chunk(&mut self, out: &mut Vec<Complex>) -> Result<usize, SourceError> {
        // Refill the staging buffer until one chunk is available or
        // the spool ends, then hand out exactly one chunk.
        while self.staged.len() - self.staged_at < self.chunk {
            // Compact before refilling so the buffer stays bounded by
            // one decode quantum plus one chunk.
            if self.staged_at > 0 {
                self.staged.drain(..self.staged_at);
                self.staged_at = 0;
            }
            if self.reader.next_chunk(&mut self.staged)? == 0 {
                break;
            }
        }
        let available = self.staged.len() - self.staged_at;
        let n = available.min(self.chunk);
        out.extend_from_slice(&self.staged[self.staged_at..self.staged_at + n]);
        self.staged_at += n;
        Ok(n)
    }

    fn reset(&mut self) -> Result<(), SourceError> {
        self.reader = RtlChunkReader::new(Cursor::new(self.bytes.clone()));
        self.staged.clear();
        self.staged_at = 0;
        Ok(())
    }

    fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    fn center_freq(&self) -> f64 {
        self.center_freq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_sdr::record::write_rtl_u8;

    fn capture(n: usize) -> Capture {
        let samples = (0..n).map(|i| Complex::from_polar(0.5, 0.01 * i as f64)).collect();
        Capture { samples, sample_rate: 2.4e6, center_freq: 1.455e6 }
    }

    fn drain(source: &mut dyn SensorSource) -> Vec<Complex> {
        let mut all = Vec::new();
        while source.next_chunk(&mut all).expect("source read") > 0 {}
        all
    }

    #[test]
    fn replay_delivers_the_capture_in_order_and_resets() {
        let cap = capture(10_000);
        let mut src = ReplaySource::new(cap.clone(), 1009);
        assert_eq!(src.sample_rate(), 2.4e6);
        let first = drain(&mut src);
        assert_eq!(first, cap.samples);
        assert_eq!(src.next_chunk(&mut Vec::new()).unwrap(), 0, "exhausted stays exhausted");
        src.reset().unwrap();
        assert_eq!(drain(&mut src), cap.samples);
    }

    #[test]
    fn looping_replay_repeats_without_straddling_the_seam() {
        let cap = capture(2500);
        let mut src = ReplaySource::looping(cap.clone(), 1000, 2);
        let mut lens = Vec::new();
        loop {
            let mut chunk = Vec::new();
            if src.next_chunk(&mut chunk).unwrap() == 0 {
                break;
            }
            lens.push(chunk.len());
        }
        // Each pass ends with its own short chunk: the seam is never
        // crossed inside one chunk.
        assert_eq!(lens, vec![1000, 1000, 500, 1000, 1000, 500]);
    }

    #[test]
    fn spool_round_trips_the_rtl_u8_recording() {
        let cap = capture(5000);
        let mut bytes = Vec::new();
        write_rtl_u8(&cap, &mut bytes).unwrap();
        let reference = emsc_sdr::record::read_rtl_u8(&bytes[..], 2.4e6, 1.455e6).unwrap();

        let mut src = SpoolSource::from_bytes(bytes, 2.4e6, 1.455e6, 777);
        let streamed = drain(&mut src);
        assert_eq!(streamed, reference.samples, "spool decode must equal batch decode");
        src.reset().unwrap();
        assert_eq!(drain(&mut src), reference.samples, "reset must replay from the top");
    }

    #[test]
    fn spool_chunks_are_bounded() {
        let cap = capture(5000);
        let mut bytes = Vec::new();
        write_rtl_u8(&cap, &mut bytes).unwrap();
        let mut src = SpoolSource::from_bytes(bytes, 2.4e6, 1.455e6, 512);
        let mut chunk = Vec::new();
        while src.next_chunk(&mut chunk).unwrap() > 0 {
            assert!(chunk.len() <= 512, "oversized chunk: {}", chunk.len());
            chunk.clear();
        }
    }

    #[test]
    fn missing_spool_file_is_a_fatal_source_error() {
        let err = SpoolSource::from_file(
            std::path::Path::new("/nonexistent/spool.bin"),
            2.4e6,
            0.0,
            1024,
        )
        .unwrap_err();
        assert!(!err.is_retryable(), "a missing file is not worth a retry: {err}");
    }
}
