//! E5: soak run of the supervised capture daemon under an escalating
//! fault schedule.
//!
//! Ten sensors stream into one supervised [`SessionRegistry`]-backed
//! daemon (see [`crate::supervisor`]):
//!
//! | # | sensor | faults |
//! |---|--------|--------|
//! | 0–2 | covert receivers, Table I laptops (healthy) | none |
//! | 3–5 | covert receivers, Table I laptops | escalating: truncate/drop → reorder/corrupt → stall → disconnect |
//! | 6 | keylogging detector | watchdog-length stall |
//! | 7 | covert receiver over a spooled `rtl_sdr` u8 recording | disconnect |
//! | 8 | keylogging detector, looping source with session rotation | none |
//! | 9 | doomed: oversized transfers + poisoned front end | poison |
//!
//! The run demonstrates the service guarantees end to end: no injected
//! fault crashes the daemon; every faulted sensor is restarted (with
//! seeded backoff) or quarantined per policy; and every sensor that
//! completes — healthy or restarted — produces a report **bit-identical
//! to the unfaulted batch reference** for its capture, because a
//! restart rewinds the source and replays the stream clean. The doomed
//! sensor exercises the other exit: its chunks can never be admitted
//! (larger than the registry buffer, shed by drop-oldest backpressure)
//! and its front end emits NaN, so the restart budget drains into
//! quarantine while nine neighbours stream on.
//!
//! Everything — captures, fault ticks, backoff jitter — derives from
//! the one seed, so the whole soak is bit-identical across
//! `EMSC_THREADS` settings and reruns (asserted by the service test
//! suite).

use emsc_core::chain::{Chain, Setup};
use emsc_core::covert_run::CovertScenario;
use emsc_core::experiments::streaming::keylog_capture;
use emsc_core::laptop::Laptop;
use emsc_core::session::SessionOutput;
use emsc_covert::rx::{Receiver, RxConfig};
use emsc_keylog::detect::Detector;
use emsc_runtime::{par_map_indexed, seed_for};
use emsc_sdr::iq::Complex;
use emsc_sdr::record::{read_rtl_u8, write_rtl_u8};
use emsc_sdr::Capture;

use crate::fault::{Fault, FaultEvent, FaultPlan};
use crate::policy::{BackpressurePolicy, SensorPolicy};
use crate::source::{ReplaySource, SpoolSource};
use crate::supervisor::{SensorKind, SensorSpec, ServiceConfig, ServiceReport, Supervisor};

/// Payload carried by every covert transmission in the soak.
pub const PAYLOAD: &[u8] = b"emsc-e5-soak";

/// Samples per source chunk (the doomed sensor uses
/// [`DOOMED_CHUNK`] instead).
pub const CHUNK: usize = 4096;

/// The doomed sensor's chunk size — deliberately larger than
/// [`BUFFER_LIMIT`], so the registry can never admit its transfers.
pub const DOOMED_CHUNK: usize = 70_000;

/// Per-session registry buffer limit, samples.
pub const BUFFER_LIMIT: usize = 1 << 16;

/// One sensor's line in the E5 table.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SoakRow {
    /// Sensor label.
    pub sensor: String,
    /// Faults scheduled against the sensor (`"stall@4, disconnect@8"`).
    pub faults: String,
    /// Final lifecycle state.
    pub state: String,
    /// Healthy ticks as a percentage of the sensor's active ticks.
    pub uptime_pct: f64,
    /// Restarts performed.
    pub restarts: u32,
    /// Sessions completed (rotations plus the final flush).
    pub sessions: usize,
    /// Sessions abandoned by restarts or quarantine.
    pub aborted: u32,
    /// Covert bits decoded across completed sessions.
    pub decoded_bits: usize,
    /// Keylog bursts detected across completed sessions.
    pub bursts: usize,
    /// Whether every completed session equals the unfaulted batch
    /// reference bit for bit; `None` when no reference applies (the
    /// doomed sensor).
    pub matches_reference: Option<bool>,
    /// Human-readable result of the last completed session.
    pub outcome: String,
}

/// The E5 result: the daemon's full report plus the per-sensor table.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakOutcome {
    /// Supervisor report (per-sensor accounting plus the event log).
    pub report: ServiceReport,
    /// One row per sensor, in admission order.
    pub rows: Vec<SoakRow>,
}

/// What a sensor is expected to produce when its stream completes.
struct Expectation {
    /// Batch reference each completed session must equal, if one
    /// applies.
    reference: Option<SessionOutput>,
}

/// Builds one covert sensor's capture, receiver config and batch
/// reference under a positional seed.
fn covert_build(laptop: &Laptop, seed: u64) -> (RxConfig, Capture, SessionOutput) {
    let chain = Chain::new(laptop, Setup::NearField);
    let scenario = CovertScenario::for_laptop(laptop, chain);
    let outcome = scenario.run(PAYLOAD, seed);
    let capture = outcome.chain_run.capture;
    let batch = Receiver::new(scenario.rx.clone()).receive(&capture);
    (scenario.rx, capture, SessionOutput::Covert(batch))
}

/// Seeded noise capture for the doomed sensor (its content never
/// reaches a decoder — the registry cannot admit its chunks).
fn noise_capture(seed: u64, n: usize) -> Capture {
    let mut state = seed | 1;
    let samples = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
            Complex::new(0.05 * u, 0.05 * u)
        })
        .collect();
    Capture { samples, sample_rate: 2.4e6, center_freq: 1.455e6 }
}

/// Runs the E5 soak under one seed: builds the ten-sensor fleet, wires
/// the escalating fault schedule, drives the daemon to completion and
/// scores every sensor against its unfaulted batch reference.
pub fn soak(seed: u64) -> SoakOutcome {
    let laptops = Laptop::all();
    assert!(laptops.len() >= 6, "the soak needs six Table I laptops");

    // Seven covert builds in parallel under positional seeds: six
    // laptop sensors (0-5) plus the capture behind the spooled
    // recording (sensor 7, seed index 7).
    let entries: Vec<(usize, &Laptop)> =
        laptops.iter().take(6).enumerate().chain(std::iter::once((7usize, &laptops[0]))).collect();
    let builds = par_map_indexed(&entries, |_, &(seed_index, laptop)| {
        covert_build(laptop, seed_for(seed, seed_index as u64))
    });

    let policy = SensorPolicy { chunks_per_tick: 2, ..SensorPolicy::default() };
    let mut specs: Vec<SensorSpec> = Vec::new();
    let mut expectations: Vec<Expectation> = Vec::new();

    // Sensors 0-5: covert receivers (0-2 healthy, 3-5 under the
    // escalating schedule). A restarted sensor rewinds and replays, so
    // the reference is the plain batch decode either way.
    for (k, (rx, capture, reference)) in builds.iter().take(6).enumerate() {
        specs.push(SensorSpec {
            label: format!("covert {}", laptops[k].model),
            kind: SensorKind::Covert(rx.clone()),
            source: Box::new(ReplaySource::new(capture.clone(), CHUNK)),
            policy,
        });
        expectations.push(Expectation { reference: Some(reference.clone()) });
    }

    // Sensor 6: keylogging detector, stalled longer than its watchdog.
    let (det_config, det_capture) = keylog_capture(seed_for(seed, 6));
    let det_reference =
        SessionOutput::Keylog(Detector::new(det_config.clone()).try_detect(&det_capture));
    specs.push(SensorSpec {
        label: "keylog sensor".to_string(),
        kind: SensorKind::Keylog(det_config.clone()),
        source: Box::new(ReplaySource::new(det_capture, CHUNK)),
        policy,
    });
    expectations.push(Expectation { reference: Some(det_reference) });

    // Sensor 7: the same receiver fed from a spooled rtl_sdr u8
    // recording. Quantisation happens on the wire, so the reference is
    // the batch decode of the *read-back* capture, not the pristine
    // one.
    let (spool_rx, spool_capture, _) = &builds[6];
    let mut spool_bytes = Vec::new();
    write_rtl_u8(spool_capture, &mut spool_bytes).expect("in-memory spool write");
    let readback =
        read_rtl_u8(&spool_bytes[..], spool_capture.sample_rate, spool_capture.center_freq)
            .expect("in-memory spool read");
    let spool_reference = SessionOutput::Covert(Receiver::new(spool_rx.clone()).receive(&readback));
    specs.push(SensorSpec {
        label: "spooled rtl_sdr".to_string(),
        kind: SensorKind::Covert(spool_rx.clone()),
        source: Box::new(SpoolSource::from_bytes(
            spool_bytes,
            spool_capture.sample_rate,
            spool_capture.center_freq,
            CHUNK,
        )),
        policy,
    });
    expectations.push(Expectation { reference: Some(spool_reference) });

    // Sensor 8: rotating keylog sensor — the source loops twice and the
    // session rotates exactly at the pass boundary, so both flushed
    // reports must equal the single-pass batch reference.
    let (rot_config, rot_capture) = keylog_capture(seed_for(seed, 8));
    let rot_reference =
        SessionOutput::Keylog(Detector::new(rot_config.clone()).try_detect(&rot_capture));
    let rot_len = rot_capture.samples.len();
    specs.push(SensorSpec {
        label: "rotating keylog".to_string(),
        kind: SensorKind::Keylog(rot_config),
        source: Box::new(ReplaySource::looping(rot_capture, CHUNK, 2)),
        policy: SensorPolicy { rotate_after_samples: Some(rot_len), ..policy },
    });
    expectations.push(Expectation { reference: Some(rot_reference) });

    // Sensor 9: doomed. Its transfers are larger than the registry
    // buffer (never admitted; drop-oldest sheds the backlog) and its
    // front end is poisoned mid-run, so every restart meets the same
    // NaN stream until the budget drains into quarantine.
    specs.push(SensorSpec {
        label: "doomed front end".to_string(),
        kind: SensorKind::Covert(builds[0].0.clone()),
        source: Box::new(ReplaySource::new(
            noise_capture(seed_for(seed, 9), 400_000),
            DOOMED_CHUNK,
        )),
        policy: SensorPolicy {
            chunks_per_tick: 2,
            backpressure: BackpressurePolicy::DropOldest,
            pending_limit: 4,
            ..SensorPolicy::default()
        },
    });
    expectations.push(Expectation { reference: None });

    // The escalating schedule: four phases against sensors 3-5, plus
    // targeted faults for the keylog, spool and doomed sensors. All
    // ticks land inside every capture's first playthrough.
    let mut events = FaultPlan::escalating(seed, &[3, 4, 5], 2, 2).events().to_vec();
    events.push(FaultEvent { tick: 4, sensor: 6, fault: Fault::Stall { ticks: 12 } });
    events.push(FaultEvent { tick: 5, sensor: 7, fault: Fault::Disconnect });
    events.push(FaultEvent { tick: 4, sensor: 9, fault: Fault::Poison });
    let plan = FaultPlan::new(events);

    let config = ServiceConfig {
        base_seed: seed,
        buffer_limit: BUFFER_LIMIT,
        tick_duration_s: 0.05,
        max_ticks: 3000,
    };
    let mut daemon = Supervisor::new(config, plan.clone());
    for spec in specs {
        daemon.add_sensor(spec);
    }
    let report = daemon.run();

    let rows = report
        .sensors
        .iter()
        .enumerate()
        .map(|(k, s)| {
            let expectation = &expectations[k];
            let matches_reference = expectation.reference.as_ref().map(|reference| {
                !s.sessions.is_empty() && s.sessions.iter().all(|c| c.output == *reference)
            });
            let outcome = match s.sessions.last() {
                Some(c) => match &c.output {
                    SessionOutput::Covert(Ok(r)) => format!("bits={}", r.bits.len()),
                    SessionOutput::Keylog(Ok(r)) => format!("bursts={}", r.bursts.len()),
                    SessionOutput::Covert(Err(e)) => format!("error: {e}"),
                    SessionOutput::Keylog(Err(e)) => format!("error: {e}"),
                },
                None => "no completed session".to_string(),
            };
            SoakRow {
                sensor: s.label.clone(),
                faults: plan.describe_sensor(k),
                state: s.state.label().to_string(),
                uptime_pct: if s.active_ticks == 0 {
                    0.0
                } else {
                    100.0 * s.uptime_ticks as f64 / s.active_ticks as f64
                },
                restarts: s.restarts,
                sessions: s.sessions.len(),
                aborted: s.aborted_sessions,
                decoded_bits: s.decoded_bits,
                bursts: s.bursts_detected,
                matches_reference,
                outcome,
            }
        })
        .collect();

    SoakOutcome { report, rows }
}

/// Renders the E5 table plus a one-line run summary.
pub fn render_soak_rows(outcome: &SoakOutcome) -> String {
    let headers =
        ["Sensor", "Faults", "State", "Uptime%", "Restarts", "Sessions", "Matches ref", "Outcome"];
    let rows: Vec<Vec<String>> = outcome
        .rows
        .iter()
        .map(|r| {
            vec![
                r.sensor.clone(),
                r.faults.clone(),
                r.state.clone(),
                format!("{:.1}", r.uptime_pct),
                r.restarts.to_string(),
                r.sessions.to_string(),
                match r.matches_reference {
                    Some(true) => "yes".to_string(),
                    Some(false) => "NO".to_string(),
                    None => "-".to_string(),
                },
                r.outcome.clone(),
            ]
        })
        .collect();

    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::from("E5: supervised capture daemon soak under escalating faults\n");
    let line = |cells: &[String], widths: &[usize]| {
        let mut s = String::new();
        for (cell, w) in cells.iter().zip(widths) {
            s.push_str(&format!("{cell:<w$}  "));
        }
        s.trim_end().to_string()
    };
    out.push_str(&line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out.push_str(&format!(
        "{} ticks ({:.1} simulated s), {} supervision events\n",
        outcome.report.ticks,
        outcome.report.elapsed_s,
        outcome.report.events.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_names_every_sensor_and_flags_mismatches() {
        // Synthetic rows: the full soak is covered (and run across
        // thread counts) by the service integration suite.
        let mk = |sensor: &str, matches: Option<bool>| SoakRow {
            sensor: sensor.to_string(),
            faults: "stall@4".to_string(),
            state: "done".to_string(),
            uptime_pct: 87.5,
            restarts: 1,
            sessions: 1,
            aborted: 1,
            decoded_bits: 120,
            bursts: 0,
            matches_reference: matches,
            outcome: "bits=120".to_string(),
        };
        let outcome = SoakOutcome {
            report: ServiceReport {
                ticks: 40,
                elapsed_s: 2.0,
                sensors: Vec::new(),
                events: Vec::new(),
            },
            rows: vec![mk("alpha", Some(true)), mk("beta", Some(false)), mk("gamma", None)],
        };
        let table = render_soak_rows(&outcome);
        for name in ["alpha", "beta", "gamma"] {
            assert!(table.contains(name), "missing {name}:\n{table}");
        }
        assert!(table.contains("NO"), "mismatch must be flagged:\n{table}");
        assert!(table.contains("40 ticks"), "summary line missing:\n{table}");
    }
}
