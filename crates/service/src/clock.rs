//! Deterministic simulated clock.
//!
//! The supervisor never reads wall-clock time: every timeout, backoff
//! delay and uptime figure is counted in *ticks* of this clock, which
//! only advances when [`SimClock::advance`] is called from the
//! supervisor's serial control loop. That makes the entire service —
//! watchdogs, restart backoff, fault schedules — a pure function of
//! its inputs, bit-identical across thread counts, machines and
//! reruns, exactly like the DSP layers below it.
//!
//! A tick corresponds to one scheduling round of the supervisor; the
//! configured [`SimClock::tick_duration_s`] maps tick counts onto the
//! simulated seconds reported in uptime tables.

/// Monotonic simulated time, in supervisor ticks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimClock {
    tick: u64,
    tick_duration_s: f64,
}

impl SimClock {
    /// A clock at tick 0 whose ticks each represent `tick_duration_s`
    /// simulated seconds (non-finite or negative durations are
    /// clamped to 0).
    pub fn new(tick_duration_s: f64) -> Self {
        let tick_duration_s = if tick_duration_s.is_finite() && tick_duration_s > 0.0 {
            tick_duration_s
        } else {
            0.0
        };
        SimClock { tick: 0, tick_duration_s }
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Simulated seconds per tick.
    pub fn tick_duration_s(&self) -> f64 {
        self.tick_duration_s
    }

    /// Simulated seconds elapsed since tick 0.
    pub fn elapsed_s(&self) -> f64 {
        self.seconds_for(self.tick)
    }

    /// Simulated seconds spanned by `ticks` ticks.
    pub fn seconds_for(&self, ticks: u64) -> f64 {
        ticks as f64 * self.tick_duration_s
    }

    /// Advances time by one tick and returns the new tick.
    pub fn advance(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_advance_monotonically() {
        let mut clock = SimClock::new(0.25);
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.advance(), 1);
        assert_eq!(clock.advance(), 2);
        assert_eq!(clock.now(), 2);
        assert!((clock.elapsed_s() - 0.5).abs() < 1e-12);
        assert!((clock.seconds_for(8) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_tick_durations_clamp_to_zero() {
        for bad in [f64::NAN, f64::NEG_INFINITY, -1.0] {
            let clock = SimClock::new(bad);
            assert_eq!(clock.tick_duration_s(), 0.0);
            assert_eq!(clock.elapsed_s(), 0.0);
        }
    }
}
