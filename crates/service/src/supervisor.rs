//! The capture supervisor: a fault-tolerant daemon loop over the
//! multi-tenant session registry.
//!
//! The paper's attack is operationally a *listening post*: radios
//! parked near victims for hours, surviving AGC glitches, dropped USB
//! transfers and sensors that come and go. [`Supervisor`] owns an
//! [`emsc_core::session::SessionRegistry`] and adds the robustness
//! layer the registry deliberately lacks:
//!
//! - **Lifecycle.** Every sensor moves through
//!   `Running → Degraded → Restarting → Quarantined/Done`
//!   ([`LifecycleState`]): transient faults mark it degraded, stream
//!   deaths trigger the restart path, and exhausted restart budgets
//!   (or fatal errors, per the typed retryable/fatal split) end in
//!   quarantine — one bad radio never takes the daemon down.
//! - **Watchdog.** A sensor that makes no forward progress for
//!   [`SensorPolicy::watchdog_ticks`] is declared dead and restarted.
//! - **Backoff.** Restarts wait out a seeded exponential backoff with
//!   deterministic jitter ([`RestartPolicy::backoff_ticks`]).
//! - **Backpressure.** Chunks the registry rejects queue in a bounded
//!   per-sensor buffer governed by [`BackpressurePolicy`]: reject
//!   (slow the producer, lose nothing) or drop-oldest (stay fresh).
//! - **Rotation and drain.** Sessions can rotate on a sample budget
//!   (final report flushed, fresh session opened mid-stream), and
//!   [`Supervisor::shutdown`] drains every queue and finalises every
//!   stream before the daemon exits.
//!
//! The whole loop runs on a [`SimClock`] and injects faults only from
//! an explicit [`FaultPlan`], so a soak run — restarts, jitter,
//! quarantines and all — replays bit-identically at any
//! `EMSC_THREADS` setting: the only parallelism is the registry's
//! `pump`, which is itself deterministic.

use std::collections::VecDeque;

use emsc_core::session::{ClosedSession, SessionId, SessionOutput, SessionRegistry};
use emsc_covert::rx::RxConfig;
use emsc_keylog::detect::DetectorConfig;
use emsc_runtime::seed_for;
use emsc_sdr::iq::Complex;

use crate::clock::SimClock;
use crate::fault::{Fault, FaultPlan};
use crate::policy::{BackpressurePolicy, SensorPolicy};
use crate::source::SensorSource;

/// Clean ticks a degraded sensor must string together before it is
/// considered healthy again.
const DEGRADED_RECOVERY_TICKS: u64 = 3;

/// Which streaming state machine a sensor feeds.
#[derive(Debug, Clone)]
pub enum SensorKind {
    /// Informed covert-channel receiver.
    Covert(RxConfig),
    /// Blind covert-channel receiver (bit period estimated at finish).
    BlindCovert(RxConfig),
    /// Keylogging burst detector.
    Keylog(DetectorConfig),
}

/// One sensor's specification at admission time.
pub struct SensorSpec {
    /// Display label.
    pub label: String,
    /// Receiver type and configuration.
    pub kind: SensorKind,
    /// Where the IQ comes from.
    pub source: Box<dyn SensorSource>,
    /// Robustness policy.
    pub policy: SensorPolicy,
}

/// Where a sensor is in its supervision lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// Healthy and streaming.
    Running,
    /// Streaming, but a recent fault was observed; recovers to
    /// [`LifecycleState::Running`] after a few clean ticks.
    Degraded,
    /// Stream declared dead; waiting out the restart backoff until
    /// `resume_tick`.
    Restarting {
        /// Tick at which the restart fires.
        resume_tick: u64,
    },
    /// Permanently isolated: fatal error or restart budget exhausted.
    Quarantined,
    /// Source exhausted and final report flushed.
    Done,
}

impl LifecycleState {
    /// Whether the sensor needs no further supervision.
    pub fn is_terminal(&self) -> bool {
        matches!(self, LifecycleState::Quarantined | LifecycleState::Done)
    }

    /// Short label for tables and event logs.
    pub fn label(&self) -> &'static str {
        match self {
            LifecycleState::Running => "running",
            LifecycleState::Degraded => "degraded",
            LifecycleState::Restarting { .. } => "restarting",
            LifecycleState::Quarantined => "quarantined",
            LifecycleState::Done => "done",
        }
    }
}

/// One line of the supervisor's event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEvent {
    /// Tick at which the event occurred.
    pub tick: u64,
    /// Index of the sensor concerned.
    pub sensor: usize,
    /// What happened (`"fault injected: stall"`, `"watchdog fired"`,
    /// `"restart 2 scheduled (resume @ 41)"`, …).
    pub what: String,
}

/// Supervisor-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Base seed: per-session registry seeds and per-sensor backoff
    /// jitter derive from it positionally.
    pub base_seed: u64,
    /// Per-session registry buffer limit, samples.
    pub buffer_limit: usize,
    /// Simulated seconds per supervisor tick (reporting only).
    pub tick_duration_s: f64,
    /// Hard stop for [`Supervisor::run`], ticks.
    pub max_ticks: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            base_seed: 2020,
            buffer_limit: 1 << 16,
            tick_duration_s: 0.1,
            max_ticks: 100_000,
        }
    }
}

/// Final per-sensor accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorReport {
    /// Display label.
    pub label: String,
    /// Lifecycle state at report time.
    pub state: LifecycleState,
    /// Ticks from admission until the sensor went terminal (or until
    /// report time).
    pub active_ticks: u64,
    /// Ticks spent healthy ([`LifecycleState::Running`] or
    /// [`LifecycleState::Degraded`]).
    pub uptime_ticks: u64,
    /// Restarts performed.
    pub restarts: u32,
    /// Fault events injected against this sensor.
    pub faults_injected: usize,
    /// Chunks lost to injected drops plus backpressure drops.
    pub chunks_dropped: usize,
    /// Completed sessions (rotations plus the final flush), in order.
    pub sessions: Vec<ClosedSession>,
    /// Sessions abandoned by the restart/quarantine path.
    pub aborted_sessions: u32,
    /// Samples pushed through all of this sensor's sessions.
    pub samples_processed: usize,
    /// Covert bits decoded across completed sessions.
    pub decoded_bits: usize,
    /// Keylog bursts detected across completed sessions.
    pub bursts_detected: usize,
    /// Kind label of the most recent stream error, if any.
    pub last_error: Option<&'static str>,
}

/// Final product of a supervised run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Ticks the daemon ran.
    pub ticks: u64,
    /// Simulated seconds the daemon ran.
    pub elapsed_s: f64,
    /// Per-sensor accounting, in admission order.
    pub sensors: Vec<SensorReport>,
    /// Chronological event log.
    pub events: Vec<ServiceEvent>,
}

/// In-transit fault state plus delivery bookkeeping for one sensor.
struct SensorSlot {
    label: String,
    kind: SensorKind,
    source: Box<dyn SensorSource>,
    policy: SensorPolicy,
    session: Option<SessionId>,
    state: LifecycleState,
    // Fault machinery (what the plan has armed against this sensor).
    stall_until: u64,
    poisoned: bool,
    corrupt_chunks: u32,
    corrupt_frac: f64,
    truncate_next: Option<f64>,
    drop_next: u32,
    reorder_request: bool,
    reorder_held: Option<Vec<Complex>>,
    disconnect_pending: bool,
    corrupt_rng: u64,
    // Delivery.
    pending: VecDeque<Vec<Complex>>,
    exhausted: bool,
    session_samples: usize,
    // Health.
    last_progress_tick: u64,
    clean_ticks: u64,
    consecutive_corrupt: u32,
    fault_seen_this_tick: bool,
    restarts: u32,
    jitter_seed: u64,
    // Metrics.
    active_ticks: u64,
    uptime_ticks: u64,
    faults_injected: usize,
    chunks_dropped: usize,
    outputs: Vec<ClosedSession>,
    aborted_sessions: u32,
    aborted_samples: usize,
}

impl SensorSlot {
    fn decoded_bits(&self) -> usize {
        self.outputs
            .iter()
            .map(|c| match &c.output {
                SessionOutput::Covert(Ok(r)) => r.bits.len(),
                _ => 0,
            })
            .sum()
    }

    fn bursts_detected(&self) -> usize {
        self.outputs
            .iter()
            .map(|c| match &c.output {
                SessionOutput::Keylog(Ok(r)) => r.bursts.len(),
                _ => 0,
            })
            .sum()
    }

    fn last_error(&self) -> Option<&'static str> {
        self.outputs.iter().rev().find_map(|c| c.output.error_kind())
    }

    fn samples_processed(&self) -> usize {
        self.aborted_samples + self.outputs.iter().map(|c| c.stats.samples_processed).sum::<usize>()
    }
}

/// The supervised, fault-tolerant capture daemon.
pub struct Supervisor {
    config: ServiceConfig,
    clock: SimClock,
    registry: SessionRegistry,
    plan: FaultPlan,
    sensors: Vec<SensorSlot>,
    events: Vec<ServiceEvent>,
}

impl Supervisor {
    /// A supervisor with no sensors yet, injecting faults from `plan`
    /// (use [`FaultPlan::none`] for a clean run).
    pub fn new(config: ServiceConfig, plan: FaultPlan) -> Self {
        Supervisor {
            clock: SimClock::new(config.tick_duration_s),
            registry: SessionRegistry::new(config.base_seed, config.buffer_limit),
            config,
            plan,
            sensors: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Admits a sensor and opens its first session, returning its
    /// index (the identity used by the fault plan and the report). A
    /// sensor whose session cannot be constructed is admitted directly
    /// into quarantine — an unopenable receiver must not sink the
    /// daemon.
    pub fn add_sensor(&mut self, spec: SensorSpec) -> usize {
        let index = self.sensors.len();
        let jitter_seed = seed_for(self.config.base_seed ^ 0x5EB0_0F5E, index as u64);
        let corrupt_rng = seed_for(self.config.base_seed ^ 0xC0B2_0175, index as u64) | 1;
        let mut slot = SensorSlot {
            label: spec.label,
            kind: spec.kind,
            source: spec.source,
            policy: spec.policy,
            session: None,
            state: LifecycleState::Running,
            stall_until: 0,
            poisoned: false,
            corrupt_chunks: 0,
            corrupt_frac: 0.0,
            truncate_next: None,
            drop_next: 0,
            reorder_request: false,
            reorder_held: None,
            disconnect_pending: false,
            corrupt_rng,
            pending: VecDeque::new(),
            exhausted: false,
            session_samples: 0,
            last_progress_tick: 0,
            clean_ticks: 0,
            consecutive_corrupt: 0,
            fault_seen_this_tick: false,
            restarts: 0,
            jitter_seed,
            active_ticks: 0,
            uptime_ticks: 0,
            faults_injected: 0,
            chunks_dropped: 0,
            outputs: Vec::new(),
            aborted_sessions: 0,
            aborted_samples: 0,
        };
        match open_session(&mut self.registry, &slot.kind, slot.source.as_ref()) {
            Ok(id) => slot.session = Some(id),
            Err(why) => {
                slot.state = LifecycleState::Quarantined;
                self.events.push(ServiceEvent {
                    tick: self.clock.now(),
                    sensor: index,
                    what: format!("quarantined at admission: {why}"),
                });
            }
        }
        self.sensors.push(slot);
        index
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current lifecycle state of sensor `k`.
    pub fn state(&self, k: usize) -> LifecycleState {
        self.sensors[k].state
    }

    /// Whether every sensor has reached a terminal state.
    pub fn all_terminal(&self) -> bool {
        self.sensors.iter().all(|s| s.state.is_terminal())
    }

    /// Runs one scheduling round: injects due faults, advances every
    /// sensor (pull → fault filter → offer → rotate/finish), then
    /// pumps the registry across the worker pool. Returns `false` once
    /// every sensor is terminal.
    pub fn tick(&mut self) -> bool {
        let now = self.clock.advance();
        self.inject_due_faults(now);
        for k in 0..self.sensors.len() {
            self.step_sensor(k, now);
        }
        self.registry.pump();
        !self.all_terminal()
    }

    /// Drives [`Supervisor::tick`] until every sensor is terminal or
    /// `max_ticks` is reached, then drains, shuts down and reports.
    pub fn run(&mut self) -> ServiceReport {
        while self.clock.now() < self.config.max_ticks && self.tick() {}
        self.shutdown()
    }

    /// Graceful drain-and-shutdown: stops pulling sources, flushes
    /// every queued chunk it can, finalises every open stream (final
    /// reports flushed) and returns the final report. Sensors still
    /// streaming are marked [`LifecycleState::Done`]; sensors caught
    /// mid-backoff keep their [`LifecycleState::Restarting`] state —
    /// the daemon stopped, they did not fail.
    pub fn shutdown(&mut self) -> ServiceReport {
        let now = self.clock.now();
        for k in 0..self.sensors.len() {
            let slot = &mut self.sensors[k];
            let Some(id) = slot.session else { continue };
            // Drain what the registry will take; a chunk it rejects
            // even after a pump cannot ever fit — drop it, counted.
            while let Some(front) = slot.pending.pop_front() {
                if self.registry.offer(id, &front).is_err() {
                    self.registry.pump();
                    if self.registry.offer(id, &front).is_err() {
                        slot.chunks_dropped += 1;
                    }
                }
            }
            match self.registry.finish(id) {
                Ok(closed) => slot.outputs.push(closed),
                Err(_) => unreachable!("open session vanished from the registry"),
            }
            slot.session = None;
            if !slot.state.is_terminal() {
                slot.state = LifecycleState::Done;
                self.events.push(ServiceEvent {
                    tick: now,
                    sensor: k,
                    what: "drained and closed at shutdown".to_string(),
                });
            }
        }
        self.report()
    }

    /// The report as of now (sensors may still be live; [`Supervisor::run`]
    /// and [`Supervisor::shutdown`] return the final one).
    pub fn report(&self) -> ServiceReport {
        ServiceReport {
            ticks: self.clock.now(),
            elapsed_s: self.clock.elapsed_s(),
            sensors: self
                .sensors
                .iter()
                .map(|s| SensorReport {
                    label: s.label.clone(),
                    state: s.state,
                    active_ticks: s.active_ticks,
                    uptime_ticks: s.uptime_ticks,
                    restarts: s.restarts,
                    faults_injected: s.faults_injected,
                    chunks_dropped: s.chunks_dropped,
                    sessions: s.outputs.clone(),
                    aborted_sessions: s.aborted_sessions,
                    samples_processed: s.samples_processed(),
                    decoded_bits: s.decoded_bits(),
                    bursts_detected: s.bursts_detected(),
                    last_error: s.last_error(),
                })
                .collect(),
            events: self.events.clone(),
        }
    }

    fn inject_due_faults(&mut self, now: u64) {
        // The plan is immutable; collect indices first to appease the
        // borrow of `self.sensors`.
        let due: Vec<(usize, Fault)> = self.plan.due(now).map(|e| (e.sensor, e.fault)).collect();
        for (k, fault) in due {
            let Some(slot) = self.sensors.get_mut(k) else { continue };
            if slot.state.is_terminal() {
                continue;
            }
            slot.faults_injected += 1;
            match fault {
                Fault::Disconnect => slot.disconnect_pending = true,
                Fault::Stall { ticks } => {
                    slot.stall_until = slot.stall_until.max(now + ticks);
                }
                Fault::TruncateChunk { keep_frac } => {
                    slot.truncate_next = Some(keep_frac.clamp(0.0, 1.0));
                }
                Fault::CorruptBurst { chunks, nan_frac } => {
                    slot.corrupt_chunks += chunks;
                    slot.corrupt_frac = nan_frac.clamp(0.0, 1.0);
                }
                Fault::DropChunks { chunks } => slot.drop_next += chunks,
                Fault::ReorderNext => slot.reorder_request = true,
                Fault::Poison => slot.poisoned = true,
            }
            self.events.push(ServiceEvent {
                tick: now,
                sensor: k,
                what: format!("fault injected: {}", fault.label()),
            });
        }
    }

    fn step_sensor(&mut self, k: usize, now: u64) {
        match self.sensors[k].state {
            LifecycleState::Done | LifecycleState::Quarantined => return,
            LifecycleState::Restarting { resume_tick } => {
                self.sensors[k].active_ticks += 1;
                if now >= resume_tick {
                    self.resume_sensor(k, now);
                }
                return;
            }
            LifecycleState::Running | LifecycleState::Degraded => {}
        }
        let slot = &mut self.sensors[k];
        slot.active_ticks += 1;
        slot.uptime_ticks += 1;
        slot.fault_seen_this_tick = false;

        if slot.disconnect_pending {
            slot.disconnect_pending = false;
            self.fail_sensor(k, now, "disconnect", true);
            return;
        }

        if now >= self.sensors[k].stall_until {
            if self.pull_chunks(k, now).is_err() {
                return; // fail path already taken
            }
        } else {
            self.sensors[k].fault_seen_this_tick = true; // stalled
        }

        self.offer_pending(k, now);

        if self.maybe_rotate_or_finish(k, now) {
            return;
        }

        let slot = &mut self.sensors[k];
        // Watchdog: no forward progress for too long means the stream
        // is dead, whatever the cause looked like.
        if now.saturating_sub(slot.last_progress_tick) >= slot.policy.watchdog_ticks {
            self.events.push(ServiceEvent {
                tick: now,
                sensor: k,
                what: "watchdog fired: no forward progress".to_string(),
            });
            self.fail_sensor(k, now, "watchdog stall", true);
            return;
        }

        // Degraded-state bookkeeping.
        let slot = &mut self.sensors[k];
        if slot.fault_seen_this_tick {
            slot.clean_ticks = 0;
            if slot.state == LifecycleState::Running {
                slot.state = LifecycleState::Degraded;
                self.events.push(ServiceEvent {
                    tick: now,
                    sensor: k,
                    what: "degraded: fault observed".to_string(),
                });
            }
        } else if slot.state == LifecycleState::Degraded {
            slot.clean_ticks += 1;
            if slot.clean_ticks >= DEGRADED_RECOVERY_TICKS {
                slot.state = LifecycleState::Running;
                self.events.push(ServiceEvent {
                    tick: now,
                    sensor: k,
                    what: "recovered: clean ticks elapsed".to_string(),
                });
            }
        }
    }

    /// Pulls up to `chunks_per_tick` chunks through the fault filter
    /// into the pending queue. `Err(())` means the sensor already took
    /// the fail path.
    fn pull_chunks(&mut self, k: usize, now: u64) -> Result<(), ()> {
        for _ in 0..self.sensors[k].policy.chunks_per_tick {
            let slot = &mut self.sensors[k];
            if slot.exhausted {
                break;
            }
            // Backpressure: a full pending queue stops the pull under
            // `Reject` (no loss), or evicts the oldest under
            // `DropOldest` (stay fresh, count the loss).
            if slot.pending.len() >= slot.policy.pending_limit {
                match slot.policy.backpressure {
                    BackpressurePolicy::Reject => break,
                    BackpressurePolicy::DropOldest => {
                        slot.pending.pop_front();
                        slot.chunks_dropped += 1;
                        slot.fault_seen_this_tick = true;
                    }
                }
            }
            let mut chunk = Vec::new();
            match slot.source.next_chunk(&mut chunk) {
                Ok(0) => {
                    slot.exhausted = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    let retryable = e.is_retryable();
                    self.events.push(ServiceEvent {
                        tick: now,
                        sensor: k,
                        what: format!("source error: {e}"),
                    });
                    self.fail_sensor(k, now, "source error", retryable);
                    return Err(());
                }
            }
            let slot = &mut self.sensors[k];

            // In-transit faults, in wire order: loss, truncation,
            // corruption, reordering.
            if slot.drop_next > 0 {
                slot.drop_next -= 1;
                slot.chunks_dropped += 1;
                slot.fault_seen_this_tick = true;
                continue;
            }
            if let Some(keep) = slot.truncate_next.take() {
                chunk.truncate((chunk.len() as f64 * keep) as usize);
                slot.fault_seen_this_tick = true;
            }
            if slot.corrupt_chunks > 0 {
                slot.corrupt_chunks -= 1;
                let frac = slot.corrupt_frac;
                corrupt_chunk(&mut chunk, frac, &mut slot.corrupt_rng);
                slot.fault_seen_this_tick = true;
            } else if slot.poisoned {
                for s in chunk.iter_mut() {
                    *s = Complex::new(f64::NAN, f64::NAN);
                }
                slot.fault_seen_this_tick = true;
            }

            // Poison detection is observational: the supervisor scans
            // what it is about to deliver, it does not peek at the
            // fault plan.
            let non_finite =
                chunk.iter().filter(|s| !s.re.is_finite() || !s.im.is_finite()).count();
            if !chunk.is_empty() && non_finite * 2 > chunk.len() {
                slot.consecutive_corrupt += 1;
                if slot.consecutive_corrupt >= slot.policy.max_corrupt_chunks {
                    self.events.push(ServiceEvent {
                        tick: now,
                        sensor: k,
                        what: format!(
                            "stream declared poisoned after {} corrupt chunks",
                            slot.consecutive_corrupt
                        ),
                    });
                    self.fail_sensor(k, now, "poisoned stream", true);
                    return Err(());
                }
            } else if !chunk.is_empty() {
                slot.consecutive_corrupt = 0;
            }

            if slot.reorder_request {
                // Hold this chunk back; it goes out after the next one.
                slot.reorder_request = false;
                slot.reorder_held = Some(chunk);
                slot.fault_seen_this_tick = true;
                continue;
            }
            slot.pending.push_back(chunk);
            if let Some(held) = slot.reorder_held.take() {
                slot.pending.push_back(held);
            }
        }
        Ok(())
    }

    /// Offers queued chunks to the registry, pumping once on a
    /// rejection; chunks the registry still refuses stay queued for
    /// the next tick. Rotation happens *here*, at the exact budget
    /// boundary between two offers — a once-per-tick check would let
    /// post-boundary chunks leak into the pre-boundary session.
    fn offer_pending(&mut self, k: usize, now: u64) {
        let Some(mut id) = self.sensors[k].session else { return };
        loop {
            let slot = &self.sensors[k];
            if slot.pending.front().is_none() {
                break;
            }
            // Budget reached with more data queued: flush this
            // session's report and open the next one before offering
            // another sample. (A boundary that coincides with the end
            // of the stream is handled by the finish path instead.)
            if let Some(budget) = slot.policy.rotate_after_samples {
                if slot.session_samples >= budget {
                    let closed = self.registry.finish(id).expect("rotating session exists");
                    let slot = &mut self.sensors[k];
                    slot.outputs.push(closed);
                    slot.session = None;
                    slot.session_samples = 0;
                    match open_session(&mut self.registry, &slot.kind, slot.source.as_ref()) {
                        Ok(new_id) => {
                            let slot = &mut self.sensors[k];
                            slot.session = Some(new_id);
                            slot.last_progress_tick = now;
                            id = new_id;
                            self.events.push(ServiceEvent {
                                tick: now,
                                sensor: k,
                                what: "session rotated: report flushed".to_string(),
                            });
                        }
                        Err(why) => {
                            self.quarantine(k, now, &format!("rotation failed: {why}"));
                            return;
                        }
                    }
                }
            }
            let slot = &mut self.sensors[k];
            let front = slot.pending.front().expect("front still queued");
            match self.registry.offer(id, front) {
                Ok(()) => {
                    let n = front.len();
                    let slot = &mut self.sensors[k];
                    slot.session_samples += n;
                    slot.pending.pop_front();
                    slot.last_progress_tick = now;
                }
                Err(_) => {
                    // One pump-retry per tick: drain everybody, try
                    // again, otherwise wait for the next tick.
                    self.registry.pump();
                    let slot = &mut self.sensors[k];
                    let front = slot.pending.front().expect("front still queued");
                    if self.registry.offer(id, front).is_ok() {
                        let n = front.len();
                        let slot = &mut self.sensors[k];
                        slot.session_samples += n;
                        slot.pending.pop_front();
                        slot.last_progress_tick = now;
                    } else {
                        break;
                    }
                }
            }
        }
    }

    /// Finishes an exhausted sensor: flushes the final report and
    /// marks the sensor done, or routes a stream error into the
    /// restart/quarantine path. Returns `true` when the sensor went
    /// terminal or restarted this tick.
    fn maybe_rotate_or_finish(&mut self, k: usize, now: u64) -> bool {
        let slot = &self.sensors[k];
        let Some(id) = slot.session else { return false };
        if slot.exhausted && slot.pending.is_empty() && slot.reorder_held.is_none() {
            let closed = self.registry.finish(id).expect("finishing session exists");
            let slot = &mut self.sensors[k];
            slot.session = None;
            let failed = closed.output.is_err();
            let retryable = closed.output.is_retryable_err();
            let kind = closed.output.error_kind();
            slot.outputs.push(closed);
            if failed {
                self.events.push(ServiceEvent {
                    tick: now,
                    sensor: k,
                    what: format!("stream error at finish: {}", kind.unwrap_or("unknown")),
                });
                self.fail_sensor(k, now, kind.unwrap_or("stream error"), retryable);
            } else {
                let slot = &mut self.sensors[k];
                slot.state = LifecycleState::Done;
                self.events.push(ServiceEvent {
                    tick: now,
                    sensor: k,
                    what: "completed: final report flushed".to_string(),
                });
            }
            return true;
        }
        false
    }

    /// The restart/quarantine decision point: abandons the current
    /// session and either schedules a backed-off restart (retryable
    /// failure, budget remaining) or quarantines the sensor.
    fn fail_sensor(&mut self, k: usize, now: u64, reason: &str, retryable: bool) {
        let slot = &mut self.sensors[k];
        if let Some(id) = slot.session.take() {
            if let Ok(stats) = self.registry.abort(id) {
                slot.aborted_sessions += 1;
                slot.aborted_samples += stats.samples_processed;
            }
        }
        slot.pending.clear();
        slot.reorder_held = None;
        slot.exhausted = false;
        slot.session_samples = 0;
        slot.consecutive_corrupt = 0;

        if !retryable {
            self.quarantine(k, now, &format!("fatal: {reason}"));
            return;
        }
        let slot = &mut self.sensors[k];
        if slot.restarts >= slot.policy.restart.max_restarts {
            self.quarantine(k, now, &format!("restart budget exhausted after: {reason}"));
            return;
        }
        slot.restarts += 1;
        let delay = slot.policy.restart.backoff_ticks(slot.restarts, slot.jitter_seed);
        let resume_tick = now + delay;
        slot.state = LifecycleState::Restarting { resume_tick };
        self.events.push(ServiceEvent {
            tick: now,
            sensor: k,
            what: format!(
                "restart {} scheduled after {reason} (backoff {delay}, resume @ {resume_tick})",
                slot.restarts
            ),
        });
    }

    /// Fires a scheduled restart: rewinds the source and opens a fresh
    /// session.
    fn resume_sensor(&mut self, k: usize, now: u64) {
        let slot = &mut self.sensors[k];
        if let Err(e) = slot.source.reset() {
            let retryable = e.is_retryable();
            self.events.push(ServiceEvent {
                tick: now,
                sensor: k,
                what: format!("restart failed to rewind source: {e}"),
            });
            self.fail_sensor(k, now, "source rewind failed", retryable);
            return;
        }
        match open_session(&mut self.registry, &slot.kind, slot.source.as_ref()) {
            Ok(id) => {
                let slot = &mut self.sensors[k];
                slot.session = Some(id);
                slot.state = LifecycleState::Running;
                slot.last_progress_tick = now;
                slot.clean_ticks = 0;
                self.events.push(ServiceEvent {
                    tick: now,
                    sensor: k,
                    what: format!("restarted (attempt {})", slot.restarts),
                });
            }
            Err(why) => self.quarantine(k, now, &format!("reopen failed: {why}")),
        }
    }

    fn quarantine(&mut self, k: usize, now: u64, why: &str) {
        let slot = &mut self.sensors[k];
        if let Some(id) = slot.session.take() {
            if let Ok(stats) = self.registry.abort(id) {
                slot.aborted_sessions += 1;
                slot.aborted_samples += stats.samples_processed;
            }
        }
        slot.pending.clear();
        slot.state = LifecycleState::Quarantined;
        self.events.push(ServiceEvent {
            tick: now,
            sensor: k,
            what: format!("quarantined: {why}"),
        });
    }
}

/// Opens the registry session matching a sensor's kind. Construction
/// failures come back as a display string so callers can log and
/// quarantine uniformly.
fn open_session(
    registry: &mut SessionRegistry,
    kind: &SensorKind,
    source: &dyn SensorSource,
) -> Result<SessionId, String> {
    let (fs, fc) = (source.sample_rate(), source.center_freq());
    match kind {
        SensorKind::Covert(rx) => {
            registry.open_covert(rx.clone(), fs, fc).map_err(|e| e.to_string())
        }
        SensorKind::BlindCovert(rx) => {
            registry.open_blind_covert(rx.clone(), fs, fc).map_err(|e| e.to_string())
        }
        SensorKind::Keylog(cfg) => {
            registry.open_keylog(cfg.clone(), fs, fc).map_err(|e| e.to_string())
        }
    }
}

/// NaN-corrupts roughly `frac` of the chunk at xorshift-seeded
/// positions (deterministic: the state threads through the slot).
fn corrupt_chunk(chunk: &mut [Complex], frac: f64, state: &mut u64) {
    let threshold = (frac * 1024.0) as u64;
    for s in chunk.iter_mut() {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        if *state % 1024 < threshold {
            *s = Complex::new(f64::NAN, f64::NAN);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_keylog::detect::Detector;
    use emsc_sdr::Capture;

    use crate::fault::FaultEvent;
    use crate::policy::{RestartPolicy, SensorPolicy};
    use crate::source::ReplaySource;

    /// A small keylogging capture (0.1 s, one keystroke burst) — cheap
    /// enough to supervise many times per test run.
    fn tiny_keylog(seed: u64) -> (DetectorConfig, Capture) {
        let fs = 2.4e6_f64;
        let center = 1.455e6;
        let f_sw = 970e3;
        let f_bb = f_sw - center;
        let n = (0.1 * fs) as usize;
        let mut samples = vec![Complex::new(0.0, 0.0); n];
        let mut state = seed | 1;
        for s in samples.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
            *s = Complex::new(0.02 * u, 0.02 * u);
        }
        let (a, b) = ((0.02 * fs) as usize, (0.06 * fs) as usize);
        for (i, s) in samples.iter_mut().enumerate().take(b).skip(a) {
            *s += Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * f_bb * i as f64 / fs);
        }
        (DetectorConfig::new(f_sw), Capture { samples, sample_rate: fs, center_freq: center })
    }

    fn keylog_spec(seed: u64, policy: SensorPolicy) -> (SensorSpec, SessionOutput) {
        let (config, capture) = tiny_keylog(seed);
        let batch = SessionOutput::Keylog(Detector::new(config.clone()).try_detect(&capture));
        let spec = SensorSpec {
            label: format!("keylog-{seed}"),
            kind: SensorKind::Keylog(config),
            source: Box::new(ReplaySource::new(capture, 9973)),
            policy,
        };
        (spec, batch)
    }

    #[test]
    fn healthy_sensor_streams_to_done_and_matches_batch() {
        let (spec, batch) = keylog_spec(7, SensorPolicy::default());
        let mut sup = Supervisor::new(ServiceConfig::default(), FaultPlan::none());
        sup.add_sensor(spec);
        let report = sup.run();
        let s = &report.sensors[0];
        assert_eq!(s.state, LifecycleState::Done);
        assert_eq!(s.restarts, 0);
        assert_eq!(s.sessions.len(), 1);
        assert_eq!(s.sessions[0].output, batch, "stream must equal batch");
        assert_eq!(s.uptime_ticks, s.active_ticks, "a healthy run is 100% uptime");
        assert!(s.bursts_detected > 0, "the keystroke burst went undetected");
    }

    #[test]
    fn disconnect_restarts_with_backoff_and_replays_clean() {
        let (spec, batch) = keylog_spec(11, SensorPolicy::default());
        let plan =
            FaultPlan::new(vec![FaultEvent { tick: 3, sensor: 0, fault: Fault::Disconnect }]);
        let mut sup = Supervisor::new(ServiceConfig::default(), plan);
        sup.add_sensor(spec);
        let report = sup.run();
        let s = &report.sensors[0];
        assert_eq!(s.state, LifecycleState::Done, "events: {:#?}", report.events);
        assert_eq!(s.restarts, 1);
        assert_eq!(s.aborted_sessions, 1, "the disconnected session is abandoned");
        assert_eq!(s.sessions.len(), 1, "only the post-restart session completes");
        assert_eq!(s.sessions[0].output, batch, "post-restart replay must equal batch");
        assert!(s.uptime_ticks < s.active_ticks, "backoff ticks must not count as uptime");
        assert!(report.events.iter().any(|e| e.what.contains("restart 1 scheduled")));
    }

    #[test]
    fn long_stall_trips_the_watchdog_then_recovers() {
        let policy = SensorPolicy { watchdog_ticks: 4, ..SensorPolicy::default() };
        let (spec, batch) = keylog_spec(13, policy);
        let plan = FaultPlan::new(vec![FaultEvent {
            tick: 2,
            sensor: 0,
            fault: Fault::Stall { ticks: 12 },
        }]);
        let mut sup = Supervisor::new(ServiceConfig::default(), plan);
        sup.add_sensor(spec);
        let report = sup.run();
        let s = &report.sensors[0];
        assert_eq!(s.state, LifecycleState::Done, "events: {:#?}", report.events);
        assert!(s.restarts >= 1, "watchdog never fired");
        assert_eq!(s.sessions.last().unwrap().output, batch);
        assert!(report.events.iter().any(|e| e.what.contains("watchdog fired")));
    }

    #[test]
    fn poison_exhausts_the_restart_budget_into_quarantine_without_collateral() {
        let policy = SensorPolicy {
            restart: RestartPolicy { max_restarts: 2, ..RestartPolicy::default() },
            ..SensorPolicy::default()
        };
        let (poisoned, _) = keylog_spec(17, policy);
        let (healthy, batch) = keylog_spec(19, SensorPolicy::default());
        let plan = FaultPlan::new(vec![FaultEvent { tick: 2, sensor: 0, fault: Fault::Poison }]);
        let mut sup = Supervisor::new(ServiceConfig::default(), plan);
        sup.add_sensor(poisoned);
        sup.add_sensor(healthy);
        let report = sup.run();
        let p = &report.sensors[0];
        assert_eq!(p.state, LifecycleState::Quarantined, "events: {:#?}", report.events);
        assert_eq!(p.restarts, 2, "budget must be spent before quarantine");
        assert!(p.sessions.is_empty(), "a poisoned stream never completes a session");
        assert!(report.events.iter().any(|e| e.what.contains("poisoned")));
        // The neighbour is untouched: supervision is per-sensor.
        let h = &report.sensors[1];
        assert_eq!(h.state, LifecycleState::Done);
        assert_eq!(h.sessions[0].output, batch);
    }

    #[test]
    fn rotation_flushes_a_full_report_per_pass() {
        let (config, capture) = tiny_keylog(23);
        let batch = SessionOutput::Keylog(Detector::new(config.clone()).try_detect(&capture));
        let n = capture.samples.len();
        let spec = SensorSpec {
            label: "rotating".to_string(),
            kind: SensorKind::Keylog(config),
            source: Box::new(ReplaySource::looping(capture, 9973, 2)),
            policy: SensorPolicy { rotate_after_samples: Some(n), ..SensorPolicy::default() },
        };
        let mut sup = Supervisor::new(ServiceConfig::default(), FaultPlan::none());
        sup.add_sensor(spec);
        let report = sup.run();
        let s = &report.sensors[0];
        assert_eq!(s.state, LifecycleState::Done, "events: {:#?}", report.events);
        assert_eq!(s.sessions.len(), 2, "two passes, two flushed reports");
        for closed in &s.sessions {
            assert_eq!(closed.output, batch, "every rotated session sees one clean pass");
        }
        assert!(report.events.iter().any(|e| e.what.contains("rotated")));
    }

    #[test]
    fn backpressure_policies_reject_or_shed_oversized_streams() {
        // Chunks bigger than the registry buffer can never be admitted:
        // Reject parks them (no loss, no progress), DropOldest sheds
        // them. Either way the watchdog notices the stalled delivery
        // and the restart budget drains into quarantine — the daemon
        // survives a sensor that cannot make progress at all.
        let config = ServiceConfig { buffer_limit: 1024, ..ServiceConfig::default() };
        let (det, capture) = tiny_keylog(29);
        let mk = |backpressure| SensorSpec {
            label: format!("{backpressure:?}"),
            kind: SensorKind::Keylog(det.clone()),
            source: Box::new(ReplaySource::new(capture.clone(), 2048)),
            policy: SensorPolicy { backpressure, pending_limit: 4, ..SensorPolicy::default() },
        };
        let mut sup = Supervisor::new(config, FaultPlan::none());
        sup.add_sensor(mk(BackpressurePolicy::Reject));
        sup.add_sensor(mk(BackpressurePolicy::DropOldest));
        let report = sup.run();
        let (reject, shed) = (&report.sensors[0], &report.sensors[1]);
        assert_eq!(reject.state, LifecycleState::Quarantined);
        assert_eq!(shed.state, LifecycleState::Quarantined);
        assert_eq!(reject.chunks_dropped, 0, "Reject must never lose a chunk");
        assert!(shed.chunks_dropped > 0, "DropOldest must shed the backlog");
        assert_eq!(reject.samples_processed, 0);
    }

    #[test]
    fn identical_runs_produce_identical_reports() {
        let run = || {
            let policy = SensorPolicy { watchdog_ticks: 4, ..SensorPolicy::default() };
            let (spec, _) = keylog_spec(31, policy);
            let plan = FaultPlan::new(vec![
                FaultEvent { tick: 2, sensor: 0, fault: Fault::TruncateChunk { keep_frac: 0.5 } },
                FaultEvent { tick: 4, sensor: 0, fault: Fault::Disconnect },
            ]);
            let mut sup = Supervisor::new(ServiceConfig::default(), plan);
            sup.add_sensor(spec);
            sup.run()
        };
        assert_eq!(run(), run(), "same plan and seed must replay bit-identically");
    }
}
