//! Per-sensor robustness policies: restart backoff, watchdogs,
//! backpressure and rotation.
//!
//! Everything here is counted in ticks of the supervisor's
//! [`crate::clock::SimClock`] and derives any randomness (backoff
//! jitter) positionally from seeds via [`emsc_runtime::seed_for`], so
//! policy decisions replay bit-identically.

use emsc_runtime::seed_for;

/// What the supervisor does when a sensor's supervisor-side delivery
/// queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Stop pulling from the source until the queue drains: no data is
    /// lost, the producer is slowed instead (correctness-first — the
    /// covert-channel decode needs every sample).
    Reject,
    /// Drop the oldest queued chunk to admit the newest
    /// (freshness-first — a monitoring sensor cares about *now*, not
    /// about a backlog it can no longer influence).
    DropOldest,
}

/// Seeded exponential backoff for sensor restarts.
///
/// Restart `n` (1-based) waits `base_ticks · factor^(n-1)` ticks,
/// capped at `cap_ticks`, plus a deterministic jitter in
/// `[0, jitter_ticks]` derived positionally from the sensor's seed —
/// the classic thundering-herd spreader, made replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Restarts allowed before the sensor is quarantined.
    pub max_restarts: u32,
    /// Base delay of the first restart, ticks.
    pub base_ticks: u64,
    /// Multiplier applied per successive restart.
    pub factor: u32,
    /// Upper bound on the exponential part, ticks.
    pub cap_ticks: u64,
    /// Jitter range, ticks (0 disables jitter).
    pub jitter_ticks: u64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy { max_restarts: 3, base_ticks: 2, factor: 2, cap_ticks: 32, jitter_ticks: 3 }
    }
}

impl RestartPolicy {
    /// Backoff delay in ticks before restart number `restart` (1 =
    /// first restart), jittered deterministically by `jitter_seed`.
    pub fn backoff_ticks(&self, restart: u32, jitter_seed: u64) -> u64 {
        let exp = self
            .base_ticks
            .saturating_mul((self.factor.max(1) as u64).saturating_pow(restart.saturating_sub(1)))
            .min(self.cap_ticks);
        let jitter = if self.jitter_ticks == 0 {
            0
        } else {
            seed_for(jitter_seed, restart as u64) % (self.jitter_ticks + 1)
        };
        exp + jitter
    }
}

/// The complete robustness policy of one supervised sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorPolicy {
    /// Chunks pulled from the source per supervisor tick.
    pub chunks_per_tick: usize,
    /// What to do when the delivery queue is full.
    pub backpressure: BackpressurePolicy,
    /// Maximum chunks queued supervisor-side awaiting registry
    /// admission.
    pub pending_limit: usize,
    /// Ticks without forward progress before the watchdog declares the
    /// stream dead and triggers the restart path.
    pub watchdog_ticks: u64,
    /// Restart budget and backoff shape.
    pub restart: RestartPolicy,
    /// Consecutive majority-non-finite chunks tolerated before the
    /// stream is declared poisoned (observed, not assumed: the
    /// supervisor scans what it delivers, it does not peek at the
    /// fault plan).
    pub max_corrupt_chunks: u32,
    /// Rotate the session (flush its final report, open a fresh one)
    /// once it has accepted this many samples. `None` disables
    /// rotation.
    pub rotate_after_samples: Option<usize>,
}

impl Default for SensorPolicy {
    fn default() -> Self {
        SensorPolicy {
            chunks_per_tick: 4,
            backpressure: BackpressurePolicy::Reject,
            pending_limit: 16,
            watchdog_ticks: 6,
            restart: RestartPolicy::default(),
            max_corrupt_chunks: 2,
            rotate_after_samples: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let policy = RestartPolicy {
            max_restarts: 10,
            base_ticks: 2,
            factor: 2,
            cap_ticks: 16,
            jitter_ticks: 0,
        };
        let delays: Vec<u64> = (1..=6).map(|n| policy.backoff_ticks(n, 0)).collect();
        assert_eq!(delays, vec![2, 4, 8, 16, 16, 16], "exp growth then cap");
    }

    #[test]
    fn jitter_is_bounded_and_seed_deterministic() {
        let policy = RestartPolicy { jitter_ticks: 5, ..RestartPolicy::default() };
        for n in 1..=4 {
            let a = policy.backoff_ticks(n, 42);
            let b = policy.backoff_ticks(n, 42);
            assert_eq!(a, b, "same seed, same delay");
            let base = RestartPolicy { jitter_ticks: 0, ..policy }.backoff_ticks(n, 42);
            assert!((base..=base + 5).contains(&a), "jitter out of range: {a} vs base {base}");
        }
        // Different sensors (seeds) de-synchronise their restarts.
        let spread: std::collections::BTreeSet<u64> =
            (0..16).map(|s| policy.backoff_ticks(1, s)).collect();
        assert!(spread.len() > 1, "jitter never varies across seeds");
    }

    #[test]
    fn pathological_policies_saturate_instead_of_overflowing() {
        let policy = RestartPolicy {
            max_restarts: u32::MAX,
            base_ticks: u64::MAX,
            factor: u32::MAX,
            cap_ticks: u64::MAX,
            jitter_ticks: 0,
        };
        // Must not panic on overflow.
        assert_eq!(policy.backoff_ticks(u32::MAX, 1), u64::MAX);
    }
}
