//! Throughput models of prior physical covert channels (Fig. 9).
//!
//! Fig. 9 of the paper compares the PMU-EM channel's transmission rate
//! against seven published physical covert channels. Rather than
//! hard-coding the chart, each comparator here carries the *physical
//! mechanism* that caps its bit rate, and derives the rate from those
//! constants — so the comparison stays a model, inspectable and
//! perturbable (the `fig9_comparison` bench sweeps them).
//!
//! Rates are "as published under a comparable setup" (the paper's
//! fair-comparison rule): similar distance class and receiver cost
//! where the original works reported several operating points.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

/// How close the receiver has to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DistanceClass {
    /// Probe or sensor within centimetres (or on-package).
    Contact,
    /// Same room, up to a few metres.
    Room,
    /// Through a wall / tens of metres.
    Building,
}

/// A covert-channel comparator with its derived maximum rate.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Baseline {
    /// Short name as used in Fig. 9.
    pub name: &'static str,
    /// Venue/year of the original publication.
    pub source: &'static str,
    /// Physical mechanism, one line.
    pub mechanism: &'static str,
    /// Derived maximum transmission rate, bits/second.
    pub max_rate_bps: f64,
    /// Distance class of the comparable setup.
    pub distance: DistanceClass,
}

/// GSMem (Guri et al., USENIX Security 2015): multi-channel DRAM bus
/// activity emits at GSM frequencies; a rootkitted baseband or
/// dedicated receiver demodulates B-ASK symbols.
///
/// Rate cap: one symbol needs a sustained burst train long enough for
/// the receiver's energy detector to integrate over its ~0.5 ms
/// measurement window, plus an equal guard interval.
pub fn gsmem() -> Baseline {
    let measurement_window_s = 0.5e-3;
    let guard_s = 0.5e-3;
    Baseline {
        name: "GSMem",
        source: "USENIX Security 2015",
        mechanism: "DRAM bus emission at GSM band, amplitude keying",
        max_rate_bps: 1.0 / (measurement_window_s + guard_s),
        distance: DistanceClass::Room,
    }
}

/// USBee (Guri et al., 2016): toggling patterns on a USB data bus
/// radiate; a nearby receiver decodes B-FSK.
///
/// Rate cap: each bit is a ~1 ms burst of alternating-fill USB
/// transfers plus inter-bit spacing — about 80 B/s ≈ 640 b/s.
pub fn usbee() -> Baseline {
    let burst_s = 1.0e-3;
    let spacing_s = 0.5625e-3;
    Baseline {
        name: "USBee",
        source: "arXiv 2016",
        mechanism: "USB data-line emission, frequency keying",
        max_rate_bps: 1.0 / (burst_s + spacing_s),
        distance: DistanceClass::Contact,
    }
}

/// AirHopper (Guri et al., MALWARE 2014): the video cable acts as an
/// FM transmitter; a phone's FM receiver demodulates audio-band
/// multi-tone keying.
///
/// Rate cap: one byte per audio tone slot at the phone radio's
/// reliable tone-discrimination rate (~60 slots/s).
pub fn airhopper() -> Baseline {
    let tone_slots_per_s = 60.0;
    let bits_per_tone = 8.0;
    Baseline {
        name: "AirHopper",
        source: "MALWARE 2014",
        mechanism: "video-cable FM emission into a phone's radio",
        max_rate_bps: tone_slots_per_s * bits_per_tone,
        distance: DistanceClass::Room,
    }
}

/// Covert acoustical mesh networking (Hanspach & Goetz, JCM 2013):
/// near-ultrasonic audio between laptop speakers/microphones.
///
/// Rate cap: the adaptive underwater-acoustics modem they reused
/// delivers ~20 b/s at keep-alive reliability.
pub fn acoustic_mesh() -> Baseline {
    let symbol_s = 0.05;
    Baseline {
        name: "Acoustic",
        source: "J. Communications 2013",
        mechanism: "near-ultrasonic audio mesh between laptops",
        max_rate_bps: 1.0 / symbol_s,
        distance: DistanceClass::Room,
    }
}

/// Thermal covert channel (Masti et al., USENIX Security 2015):
/// one core heats, a neighbouring core's thermal sensor reads.
///
/// Rate cap: the die+package thermal time constant is seconds; a
/// reliably detectable temperature swing needs ≥ τ/4 of heating and
/// as much cooling per bit.
pub fn thermal() -> Baseline {
    let thermal_tau_s = 2.0;
    let bit_s = 2.0 * thermal_tau_s / 4.0;
    Baseline {
        name: "Thermal",
        source: "USENIX Security 2015",
        mechanism: "core heating sensed by a co-located thermal sensor",
        max_rate_bps: 1.0 / bit_s,
        distance: DistanceClass::Contact,
    }
}

/// DFS covert channel (Alagappan et al., VLSI-SoC 2017): one core
/// modulates the shared frequency-scaling state; another observes it.
///
/// Rate cap: the DVFS governor's sampling interval (~10 ms) plus the
/// frequency-transition settle time bounds one reliable symbol.
pub fn dfs() -> Baseline {
    let governor_sample_s = 10e-3;
    let settle_s = 2e-3;
    Baseline {
        name: "DFS",
        source: "VLSI-SoC 2017",
        mechanism: "shared DVFS state modulated between cores",
        max_rate_bps: 1.0 / (governor_sample_s + settle_s),
        distance: DistanceClass::Contact,
    }
}

/// POWERT channels (Khatamifard et al., HPCA 2019): the source
/// modulates the shared power budget; the sink senses it through its
/// own performance.
///
/// Rate cap: the power-management firmware redistributes budget on
/// multi-millisecond windows, and the sink must run its probe workload
/// long enough to see a statistically significant slowdown.
pub fn powert() -> Baseline {
    let budget_window_s = 4e-3;
    let probe_s = 2e-3;
    Baseline {
        name: "POWERT",
        source: "HPCA 2019",
        mechanism: "shared power budget sensed via own performance",
        max_rate_bps: 1.0 / (budget_window_s + probe_s),
        distance: DistanceClass::Contact,
    }
}

/// All seven comparators, slowest first.
pub fn all_baselines() -> Vec<Baseline> {
    let mut v = vec![thermal(), acoustic_mesh(), dfs(), powert(), airhopper(), usbee(), gsmem()];
    v.sort_by(|a, b| {
        a.max_rate_bps.partial_cmp(&b.max_rate_bps).unwrap_or(std::cmp::Ordering::Equal)
    });
    v
}

/// The proposed PMU-EM channel's best measured rate (Table II,
/// MacBookPro-2015): 3.7 kb/s.
pub const PROPOSED_RATE_BPS: f64 = 3700.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_published_magnitudes() {
        assert!((gsmem().max_rate_bps - 1000.0).abs() < 1.0);
        assert!((usbee().max_rate_bps - 640.0).abs() < 1.0);
        assert!((airhopper().max_rate_bps - 480.0).abs() < 1.0);
        assert!((acoustic_mesh().max_rate_bps - 20.0).abs() < 0.1);
        assert!((thermal().max_rate_bps - 1.0).abs() < 0.1);
        assert!((dfs().max_rate_bps - 83.3).abs() < 1.0);
        assert!((powert().max_rate_bps - 166.7).abs() < 1.0);
    }

    #[test]
    fn proposed_is_over_3x_the_fastest_baseline() {
        // The paper's headline claim: >3× faster than GSMem, the
        // fastest prior physical covert channel.
        let baselines = all_baselines();
        let fastest = baselines.last().unwrap();
        assert_eq!(fastest.name, "GSMem");
        assert!(PROPOSED_RATE_BPS > 3.0 * fastest.max_rate_bps);
    }

    #[test]
    fn proposed_is_over_20x_powert() {
        // §VI: "compared to POWERT, our proposed covert channel can
        // achieve significantly higher data-rate (>20x)".
        assert!(PROPOSED_RATE_BPS > 20.0 * powert().max_rate_bps);
    }

    #[test]
    fn baselines_are_sorted_ascending() {
        let v = all_baselines();
        assert_eq!(v.len(), 7);
        for w in v.windows(2) {
            assert!(w[0].max_rate_bps <= w[1].max_rate_bps);
        }
    }

    #[test]
    fn every_baseline_has_distinct_name_and_mechanism() {
        let v = all_baselines();
        for (i, a) in v.iter().enumerate() {
            for b in v.iter().skip(i + 1) {
                assert_ne!(a.name, b.name);
                assert_ne!(a.mechanism, b.mechanism);
            }
        }
    }
}
