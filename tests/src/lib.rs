//! Shared fixtures for the cross-crate integration tests.
//!
//! The torture corpus — every degenerate capture a real deployment can
//! produce — lives here so the panic-safety suite (`torture.rs`) and
//! the streaming/batch equivalence suite (`streaming.rs`) exercise the
//! *same* inputs: any capture the batch chain must survive, the
//! streaming chain must survive too, with bit-identical output.

use emsc_sdr::{Capture, Complex};

/// Sample rate shared by every corpus capture, hertz.
pub const FS: f64 = 2.4e6;
/// VRM switching frequency the corpus receivers are tuned to, hertz.
pub const F_SW: f64 = 250e3;

/// Wraps samples in a [`Capture`] at the corpus tuning ([`FS`]/[`F_SW`]).
pub fn capture(samples: Vec<Complex>) -> Capture {
    Capture { samples, sample_rate: FS, center_freq: F_SW }
}

/// A deterministic xorshift so the corpus needs no RNG plumbing.
pub fn noise(n: usize, mut state: u64) -> Vec<Complex> {
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let re = ((state & 0xFFFF) as f64 / 65535.0) - 0.5;
            let im = (((state >> 16) & 0xFFFF) as f64 / 65535.0) - 0.5;
            Complex::new(re, im)
        })
        .collect()
}

/// An on-off-keyed tone at the VRM line: structurally a transmission,
/// so truncating it mid-"frame" exercises the decode tail.
pub fn ook_tone(n: usize, bit_samples: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| {
            let on = (i / bit_samples).is_multiple_of(2);
            let amp = if on { 0.5 } else { 0.02 };
            // Carrier at baseband 0 Hz (center_freq == f_sw).
            Complex::new(amp, 0.0) + noise(1, i as u64 + 1)[0].scale(0.05)
        })
        .collect()
}

/// The torture corpus: label plus capture. Degenerate sample rates get
/// their own entries in the torture suite (they need different
/// [`Capture`] fields).
pub fn corpus() -> Vec<(&'static str, Capture)> {
    let mut nan_laced = ook_tone(60_000, 600);
    for i in (0..nan_laced.len()).step_by(97) {
        nan_laced[i] = Complex::new(f64::NAN, f64::INFINITY);
    }
    let all_nan = vec![Complex::new(f64::NAN, f64::NAN); 20_000];
    let clipped: Vec<Complex> = ook_tone(60_000, 600)
        .into_iter()
        .map(|s| Complex::new(s.re.clamp(-0.03, 0.03), s.im.clamp(-0.03, 0.03)))
        .collect();
    let mut truncated = ook_tone(120_000, 600);
    truncated.truncate(truncated.len() / 3 + 17);

    vec![
        ("empty", capture(Vec::new())),
        ("one-sample", capture(vec![Complex::new(0.1, 0.0)])),
        ("shorter-than-window", capture(noise(100, 5))),
        ("dc-only", capture(vec![Complex::new(0.3, 0.0); 50_000])),
        ("silence", capture(vec![Complex::new(0.0, 0.0); 50_000])),
        ("pure-noise", capture(noise(50_000, 42))),
        ("nan-laced", capture(nan_laced)),
        ("all-nan", capture(all_nan)),
        ("hard-clipped", capture(clipped)),
        ("truncated-mid-frame", capture(truncated)),
    ]
}
