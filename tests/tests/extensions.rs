//! Integration tests for the extension features: packetised
//! transfers, capture recording, architecture blinking and website
//! fingerprinting.

use emsc_core::chain::{Chain, Setup};
use emsc_core::countermeasure::Countermeasure;
use emsc_core::covert_run::CovertScenario;
use emsc_core::fingerprint_run::FingerprintScenario;
use emsc_core::laptop::Laptop;
use emsc_covert::packets::{depacketize, packetize, PacketConfig};
use emsc_covert::rx::{Receiver, RxConfig};
use emsc_covert::tx::{Transmitter, TxConfig};
use emsc_fingerprint::workload::site_library;
use emsc_sdr::record::{read_rtl_u8, write_rtl_u8};
use emsc_sdr::{Capture, Frontend, FrontendConfig};

#[test]
fn packetised_transfer_survives_the_air() {
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = CovertScenario::for_laptop(&laptop, chain);
    let file = b"multi-packet payload across the gap!";
    let config = PacketConfig::default();
    let n = file.len().div_ceil(config.packet_bytes);

    let bits = packetize(file, config);
    let (rx_bits, _) = scenario.run_bits(&bits, 0xFA57);
    let out = depacketize(&rx_bits, config, Some(n));
    // Indels can cost a packet, never the rest.
    assert!(out.packets.len() >= n - 1, "{} of {} packets", out.packets.len(), n);
    let recovered_bytes = out.payload.len();
    assert!(
        recovered_bytes >= file.len() - config.packet_bytes,
        "only {recovered_bytes} bytes back"
    );
}

#[test]
fn captures_round_trip_through_the_rtl_sdr_format() {
    // Digitise a transmission, serialise it as rtl_sdr u8, read it
    // back, and demodulate the *file* — the receiver must not care.
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = CovertScenario::for_laptop(&laptop, chain);
    let payload = b"saved to disk";
    let outcome = scenario.run(payload, 31);

    let mut bytes = Vec::new();
    write_rtl_u8(&outcome.chain_run.capture, &mut bytes).unwrap();
    let restored = read_rtl_u8(
        &bytes[..],
        outcome.chain_run.capture.sample_rate,
        outcome.chain_run.capture.center_freq,
    )
    .unwrap();

    let receiver = Receiver::new(scenario.rx.clone());
    let report = receiver.demodulate(&restored);
    let from_disk = emsc_covert::align_semiglobal(&outcome.tx_bits, &report.bits);
    assert!(from_disk.ber() < 0.02, "BER after u8 round trip: {}", from_disk.ber());
}

#[test]
fn blinking_starves_the_receiver() {
    let laptop = Laptop::dell_inspiron();
    let chain = Countermeasure::Blinking { period_s: 1e-3, duty: 0.6 }
        .apply(Chain::new(&laptop, Setup::NearField));
    let scenario = CovertScenario::for_laptop(&laptop, chain);
    let payload = b"hidden by blinking";
    let outcome = scenario.run(payload, 12);
    assert!(!outcome.recovered(payload), "blinking must break the transfer");
    // Most of the modulation is blanked: far fewer bits demodulate
    // than were sent.
    assert!(
        outcome.report.bits.len() < outcome.tx_bits.len() / 2,
        "{} bits demodulated of {}",
        outcome.report.bits.len(),
        outcome.tx_bits.len()
    );
}

#[test]
fn fingerprinting_separates_extreme_sites() {
    // The heaviest and lightest profiles must be distinguishable from
    // a couple of visits each.
    let lib = site_library();
    let news = lib.iter().find(|s| s.name == "news-portal").unwrap().clone();
    let search = lib.iter().find(|s| s.name == "search").unwrap().clone();
    let laptop = Laptop::dell_precision();
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = FingerprintScenario::standard(chain, vec![news, search]);
    let outcome = scenario.run(2, 9);
    assert!(
        outcome.accuracy >= 0.75,
        "two extreme sites should separate: accuracy {}",
        outcome.accuracy
    );
}

#[test]
fn two_transmitters_share_the_ether_by_frequency_division() {
    // Two different laptops (different VRM switching frequencies)
    // transmit simultaneously in the same room; one receiver capture
    // demodulates both, each at its own f_sw — the EM analogue of FDM.
    let a = Laptop::dell_inspiron(); // 970 kHz
    let b = Laptop::lenovo_thinkpad(); // 880 kHz
    let secret_a = b"alpha transmission";
    let secret_b = b"bravo transmission";

    let render = |laptop: &Laptop, payload: &[u8], tuned_to: f64| {
        // Build the laptop's transmission and render it through a
        // noiseless scene tuned to the *shared* receiver frequency.
        let chain = Chain::new(laptop, Setup::NearField);
        let tx = TxConfig::calibrated_with_overhead(
            &chain.machine,
            laptop.tx_active_period_s(),
            laptop.tx_sleep_period_s(),
            laptop.tx_overhead_s(),
        );
        let transmitter = Transmitter::new(tx);
        let mut program = emsc_pmu::workload::Program::new();
        program.sleep(2e-3);
        program.busy(chain.machine.iterations_for_duration(20e-3));
        program.extend(transmitter.program(payload).ops().iter().copied());
        let trace = chain.machine.run(&program, 77);
        let train = emsc_vrm::buck::Buck::new(chain.vrm.clone()).convert(&trace);
        let mut scene = chain.scene.clone();
        scene.synth.center_freq = tuned_to;
        scene.noise_sigma = 0.0; // noise added once, after summing
        (scene.render(&train, 77), tx, transmitter.on_air_bits(payload))
    };

    // Tune midway between the two fundamentals so both (and their
    // harmonics) stay in the 2.4 MHz window.
    let f_tune = 1.4e6;
    let (sig_a, tx_a, bits_a) = render(&a, secret_a, f_tune);
    let (sig_b, tx_b, bits_b) = render(&b, secret_b, f_tune);

    let n = sig_a.len().min(sig_b.len());
    let mut sum: Vec<emsc_sdr::Complex> = (0..n).map(|i| sig_a[i] + sig_b[i]).collect();
    emsc_emfield::interference::add_awgn(&mut sum, 2.0, 99);
    let analog = Capture { samples: sum, sample_rate: 2.4e6, center_freq: f_tune };
    let capture = Frontend::new(FrontendConfig::rtl_sdr_v3(f_tune)).digitize(&analog.samples);
    let capture = Capture { center_freq: f_tune, ..capture };

    for (laptop, tx, bits, secret) in
        [(&a, tx_a, bits_a, &secret_a[..]), (&b, tx_b, bits_b, &secret_b[..])]
    {
        let machine = laptop.machine();
        let expected = tx.expected_bit_period_on(&machine);
        let rx = RxConfig::new(laptop.switching_freq_hz, expected);
        let report = Receiver::new(rx).demodulate(&capture);
        let alignment = emsc_covert::align_semiglobal(&bits, &report.bits);
        assert!(
            alignment.ber() < 0.03,
            "{}: BER {} in the shared ether",
            laptop.model,
            alignment.ber()
        );
        let out = emsc_covert::frame::deframe(&report.bits, tx.frame, 1);
        assert!(out.is_some(), "{}: frame lost", laptop.model);
        let _ = secret; // exact recovery not required; BER bound is the check
    }
}

#[test]
fn cw_interference_on_f_sw_is_survivable_until_agc_capture() {
    // Fault injection: a continuous tone lands *exactly* on the
    // victim's switching frequency. On-off keying is robust to a
    // constant tone — both levels shift together and the bimodal
    // threshold adapts — until the interferer is strong enough to
    // capture the 8-bit AGC and quantise the modulation away.
    let laptop = Laptop::dell_inspiron(); // f_sw = 970 kHz
    let payload = b"jammed fundamental";

    let run_with = |amplitude: f64| {
        let mut chain = Chain::new(&laptop, Setup::NearField);
        chain.scene.interferers.push(emsc_emfield::interference::Interferer {
            fundamental_hz: laptop.switching_freq_hz,
            amplitude,
            harmonics: 1,
            rolloff: 1.0,
        });
        let scenario = CovertScenario::for_laptop(&laptop, chain);
        let o = scenario.run(payload, 3);
        o.alignment.ber() + o.alignment.insertion_probability() + o.alignment.deletion_probability()
    };

    let moderate = run_with(6.0);
    assert!(
        moderate < 0.05,
        "a tone comparable to the signal must not break OOK: total error {moderate}"
    );
    let capture_level = run_with(2000.0);
    assert!(
        capture_level > 5.0 * moderate.max(0.004),
        "AGC capture should finally break the link: {capture_level} vs {moderate}"
    );
}
