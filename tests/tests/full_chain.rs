//! Workspace integration tests: the complete side-channel system
//! exercised end to end through the public API.

use emsc_core::chain::{Chain, Setup};
use emsc_core::countermeasure::Countermeasure;
use emsc_core::covert_run::CovertScenario;
use emsc_core::laptop::Laptop;

#[test]
fn secret_crosses_the_air_gap_at_near_field() {
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = CovertScenario::for_laptop(&laptop, chain);
    // Exact recovery is seed-dependent (an unlucky indel shifts the
    // tail — see the comment in every_laptop_sustains_the_covert_channel);
    // this seed is one of the ~80% that recover cleanly.
    let secret = b"the launch code is 0000";
    let outcome = scenario.run(secret, 12);
    assert!(
        outcome.recovered(secret),
        "payload lost: BER {:.4}, {} ins, {} del",
        outcome.alignment.ber(),
        outcome.alignment.insertions,
        outcome.alignment.deletions
    );
}

#[test]
fn every_laptop_sustains_the_covert_channel() {
    // The paper's core claim: the channel exists on all six laptops,
    // regardless of vendor, OS and microarchitecture.
    for (i, laptop) in Laptop::all().into_iter().enumerate() {
        let chain = Chain::new(&laptop, Setup::NearField);
        let scenario = CovertScenario::for_laptop(&laptop, chain);
        let payload = b"cross-vendor";
        let outcome = scenario.run(payload, 900 + i as u64);
        assert!(
            outcome.alignment.ber() < 0.06,
            "{}: BER {}",
            laptop.model,
            outcome.alignment.ber()
        );
        // A single insertion/deletion shifts everything after it (the
        // Hamming code only fixes substitutions — §IV-B4), so exact
        // recovery is not guaranteed on every seed; the frame marker
        // must still be found and indels must stay rare.
        assert!(outcome.deframed.is_some(), "{}: frame marker lost", laptop.model);
        assert!(
            outcome.alignment.insertion_probability() < 0.05
                && outcome.alignment.deletion_probability() < 0.05,
            "{}: IP {} DP {}",
            laptop.model,
            outcome.alignment.insertion_probability(),
            outcome.alignment.deletion_probability()
        );
    }
}

#[test]
fn channel_quality_degrades_monotonically_with_distance() {
    let laptop = Laptop::dell_inspiron();
    let payload = b"distance sweep";
    let mut energies = Vec::new();
    for d in [1.0, 1.5, 2.5] {
        let chain = Chain::new(&laptop, Setup::LineOfSight(d));
        let scenario = CovertScenario::for_laptop(&laptop, chain);
        let outcome = scenario.run(payload, 77);
        // Mean received energy-signal level during the transfer.
        let mean_energy: f64 =
            outcome.report.energy.iter().sum::<f64>() / outcome.report.energy.len() as f64;
        energies.push(mean_energy);
    }
    assert!(
        energies[0] > energies[1] && energies[1] > energies[2],
        "energy not monotone: {energies:?}"
    );
}

#[test]
fn disabling_both_power_state_families_kills_the_channel() {
    let laptop = Laptop::dell_inspiron();
    let payload = b"should never arrive";

    let baseline = CovertScenario::for_laptop(&laptop, Chain::new(&laptop, Setup::NearField));
    let ok = baseline.run(payload, 5);
    assert!(ok.alignment.ber() < 0.05, "baseline BER {}", ok.alignment.ber());

    let hardened_chain = Countermeasure::DisableBoth.apply(Chain::new(&laptop, Setup::NearField));
    let hardened = CovertScenario::for_laptop(&laptop, hardened_chain);
    let dead = hardened.run(payload, 5);
    assert!(!dead.recovered(payload), "channel must die with C- and P-states disabled");
    // Alignment statistics are meaningless against garbage (edit
    // distance finds spurious matches in any random stream), so test
    // information content directly: the transmitted bits must align no
    // better against the hardened capture than an unrelated random
    // bitstring of the same length does.
    let mut state = 0xDEAD_BEEFu64;
    let control: Vec<u8> = (0..dead.tx_bits.len())
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 1) as u8
        })
        .collect();
    let real_cost = {
        let a = emsc_covert::align_semiglobal(&dead.tx_bits, &dead.report.bits);
        a.substitutions + a.insertions + a.deletions
    };
    let control_cost = {
        let a = emsc_covert::align_semiglobal(&control, &dead.report.bits);
        a.substitutions + a.insertions + a.deletions
    };
    assert!(
        real_cost as f64 > 0.8 * control_cost as f64,
        "hardened capture still correlates with the payload: cost {real_cost} vs control {control_cost}"
    );
    // Sanity: the healthy baseline is far better than its control.
    let ok_cost = {
        let a = emsc_covert::align_semiglobal(&ok.tx_bits, &ok.report.bits);
        a.substitutions + a.insertions + a.deletions
    };
    let ok_control_cost = {
        let a = emsc_covert::align_semiglobal(
            &control[..ok.tx_bits.len().min(control.len())],
            &ok.report.bits,
        );
        a.substitutions + a.insertions + a.deletions
    };
    assert!(
        (ok_cost as f64) < 0.2 * ok_control_cost as f64,
        "baseline should beat its control: {ok_cost} vs {ok_control_cost}"
    );
}

#[test]
fn disabling_only_one_family_leaves_the_channel_alive() {
    // §III: "to observe this side-channel, the processor needs to be
    // able to switch between at least one high-power and at least one
    // low-power state" — either C-states or P-states alone suffice.
    let laptop = Laptop::dell_inspiron();
    let payload = b"still leaking";
    for cm in [Countermeasure::DisableCStates, Countermeasure::DisablePStates] {
        let chain = cm.apply(Chain::new(&laptop, Setup::NearField));
        let scenario = CovertScenario::for_laptop(&laptop, chain);
        let outcome = scenario.run(payload, 6);
        assert!(
            outcome.alignment.ber() < 0.12,
            "{}: BER {} — channel should survive",
            cm.label(),
            outcome.alignment.ber()
        );
    }
}

#[test]
fn strong_shielding_degrades_the_channel() {
    let laptop = Laptop::dell_inspiron();
    let payload = b"attenuated";
    let shielded_chain = Countermeasure::Shielding { attenuation_db: 60.0 }
        .apply(Chain::new(&laptop, Setup::NearField));
    let scenario = CovertScenario::for_laptop(&laptop, shielded_chain);
    let outcome = scenario.run(payload, 8);
    assert!(!outcome.recovered(payload), "60 dB of shielding should bury the signal");
}

#[test]
fn vrm_randomization_raises_error_rate() {
    let laptop = Laptop::dell_inspiron();
    let payload = b"randomized vrm";
    let base = CovertScenario::for_laptop(&laptop, Chain::new(&laptop, Setup::NearField))
        .run(payload, 9)
        .alignment
        .ber();
    let randomized_chain =
        Countermeasure::RandomizeVrm { spread: 0.45 }.apply(Chain::new(&laptop, Setup::NearField));
    let randomized =
        CovertScenario::for_laptop(&laptop, randomized_chain).run(payload, 9).alignment.ber();
    assert!(
        randomized > base + 0.02,
        "randomization should hurt: base {base}, randomized {randomized}"
    );
}
