//! Torture corpus: no public receive-chain entry point may panic.
//!
//! Every capture here is one a real deployment can produce — a dead
//! dongle (empty), a capture cut off mid-transfer, a saturated front
//! end, raw DC, pure noise, or NaN-laced sample streams from a buggy
//! driver. The contract pinned by this suite: each public RX entry
//! point either returns a typed error or an explicit empty report.
//! Panics are the one forbidden outcome.

use std::io::{self, Read};

use emsc_covert::frame::{deframe, frame_payload, try_deframe, FrameConfig, FrameError};
use emsc_covert::rx::{estimate_bit_period, find_switching_frequency, Receiver, RxConfig, RxError};
use emsc_keylog::{Detector, DetectorConfig};
use emsc_sdr::error::{CaptureError, StatsError};
use emsc_sdr::impair::{apply_all, Impairment};
use emsc_sdr::record::read_rtl_u8;
use emsc_sdr::stats::{try_mean, try_median, try_quantile, Histogram, RayleighFit};
use emsc_sdr::{Capture, Complex};
use emsc_tests::{capture, corpus, noise, FS, F_SW};

fn receiver() -> Receiver {
    Receiver::new(RxConfig::new(F_SW, 250e-6))
}

#[test]
fn receiver_entry_points_never_panic_on_the_corpus() {
    let rx = receiver();
    for (label, cap) in corpus() {
        // Fallible paths: typed error or a report — both fine, panic
        // is not.
        let _ = rx.receive(&cap).map_err(|e| format!("{label}: {e}"));
        let _ = rx.receive_blind(&cap).map_err(|e| format!("{label}: {e}"));
        // Panic-free wrappers must degrade to an explicit empty
        // report, never propagate a failure.
        let r = rx.demodulate(&cap);
        if rx.receive(&cap).is_err() {
            assert!(r.bits.is_empty(), "{label}: failed decode must yield the empty report");
        }
        let rb = rx.demodulate_blind(&cap);
        if rx.receive_blind(&cap).is_err() {
            assert!(rb.bits.is_empty(), "{label}: failed blind decode must yield empty report");
        }
        let _ = find_switching_frequency(&cap, 100e3, 500e3);
    }
}

#[test]
fn structural_failures_map_to_the_right_typed_errors() {
    let rx = receiver();
    assert_eq!(
        rx.receive(&capture(Vec::new())),
        Err(RxError::Capture(CaptureError::Empty)),
        "empty capture"
    );
    assert!(
        matches!(
            rx.receive(&capture(noise(100, 5))),
            Err(RxError::Capture(CaptureError::TooShort { .. }))
        ),
        "sub-window capture"
    );
    assert!(
        matches!(
            rx.receive(&capture(vec![Complex::new(f64::NAN, f64::NAN); 20_000])),
            Err(RxError::Capture(CaptureError::NonFinite { .. }))
        ),
        "all-NaN capture"
    );
    // Silence is NOT an error: nothing sent is a legitimate decode.
    let silent = rx.receive(&capture(vec![Complex::new(0.0, 0.0); 50_000]));
    assert!(silent.is_ok(), "silence must decode to Ok: {silent:?}");

    // Degenerate sample rates are capture errors, not panics.
    for rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        let cap = Capture { samples: noise(10_000, 3), sample_rate: rate, center_freq: F_SW };
        assert_eq!(
            rx.receive(&cap),
            Err(RxError::Capture(CaptureError::InvalidSampleRate)),
            "sample rate {rate}"
        );
    }

    // A band that contains no configured harmonic is NoCarrier.
    let off_band = Capture { samples: noise(10_000, 3), sample_rate: FS, center_freq: 1e9 };
    assert_eq!(rx.receive(&off_band), Err(RxError::NoCarrier));
}

#[test]
fn receiver_constructor_rejects_bad_configs_without_panicking() {
    let good = RxConfig::new(F_SW, 250e-6);
    let cases: Vec<RxConfig> = vec![
        RxConfig { fft_size: 300, ..good.clone() },
        RxConfig { decimation: 0, ..good.clone() },
        RxConfig { harmonics: 0, ..good.clone() },
        RxConfig { expected_bit_period_s: 0.0, ..good.clone() },
        RxConfig { expected_bit_period_s: f64::NAN, ..good.clone() },
        RxConfig { switching_freq_hz: f64::INFINITY, ..good.clone() },
    ];
    for cfg in cases {
        assert!(
            matches!(Receiver::try_new(cfg), Err(RxError::InvalidConfig(_))),
            "bad config accepted"
        );
    }
    assert!(Receiver::try_new(good).is_ok());
}

#[test]
fn keylog_detector_never_panics_on_the_corpus() {
    let detector = Detector::new(DetectorConfig::new(F_SW));
    for (label, cap) in corpus() {
        let _ = detector.try_detect(&cap).map_err(|e| format!("{label}: {e}"));
        // The panic-free wrapper degrades to an empty report.
        let report = detector.detect(&cap);
        if detector.try_detect(&cap).is_err() {
            assert!(report.bursts.is_empty(), "{label}: failed detect must yield no bursts");
        }
    }
    for rate in [0.0, f64::NAN] {
        let cap = Capture { samples: noise(10_000, 3), sample_rate: rate, center_freq: F_SW };
        assert!(detector.try_detect(&cap).is_err(), "sample rate {rate} must be an error");
        assert!(detector.detect(&cap).bursts.is_empty());
    }
}

#[test]
fn frame_sync_reports_truncation_and_absence_distinctly() {
    let config = FrameConfig::default();
    // No marker anywhere.
    assert_eq!(try_deframe(&[], config, 1), Err(FrameError::MarkerNotFound));
    assert_eq!(try_deframe(&[0, 1, 0, 1, 1, 0], config, 1), Err(FrameError::MarkerNotFound));
    assert_eq!(deframe(&[], config, 1), None);

    // A real frame cut off inside the length header.
    let bits = frame_payload(b"torture", config);
    let truncated = &bits[..bits.len().min(config.sync_len + config.zeros_len + 18)];
    match try_deframe(truncated, config, 1) {
        Err(FrameError::TruncatedHeader) | Err(FrameError::MarkerNotFound) => {}
        other => panic!("truncated frame must be a typed error, got {other:?}"),
    }

    // The full frame still round-trips.
    let full = try_deframe(&bits, config, 1).expect("intact frame must deframe");
    assert_eq!(full.payload, b"torture");
}

#[test]
fn estimation_helpers_are_total_on_garbage() {
    // Period estimation over empty / NaN / constant energy.
    assert_eq!(estimate_bit_period(&[], 1e-5, 50e-6, 5e-3), None);
    let nan_energy = vec![f64::NAN; 256];
    let _ = estimate_bit_period(&nan_energy, 1e-5, 50e-6, 5e-3);
    let flat = vec![1.0; 256];
    let _ = estimate_bit_period(&flat, 1e-5, 50e-6, 5e-3);

    // Stats: typed errors, no panics.
    assert_eq!(try_quantile(&[], 0.5), Err(StatsError::EmptyData));
    assert_eq!(try_quantile(&[1.0], f64::NAN), Err(StatsError::InvalidQuantile));
    assert_eq!(try_median(&[]), Err(StatsError::EmptyData));
    assert_eq!(try_mean(&[]), Err(StatsError::EmptyData));
    assert_eq!(try_mean(&[f64::NAN, f64::NAN]), Err(StatsError::NoFiniteData));
    assert!(Histogram::try_from_data(&[], 10).is_err());
    assert!(Histogram::try_from_data(&[f64::NAN], 10).is_err());
    assert!(RayleighFit::try_fit(&[]).is_err());
    assert!(RayleighFit::try_fit(&[f64::NAN]).is_err());
}

/// A reader that fails mid-stream, after yielding some valid bytes.
struct FailAfter {
    remaining: usize,
}

impl Read for FailAfter {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "dongle unplugged"));
        }
        let n = buf.len().min(self.remaining);
        for b in &mut buf[..n] {
            *b = 0x80;
        }
        self.remaining -= n;
        Ok(n)
    }
}

#[test]
fn recording_reader_failures_surface_as_io_errors() {
    // Mid-capture failure is an Err, not a panic or a silent truncate.
    let err = read_rtl_u8(FailAfter { remaining: 1000 }, FS, F_SW).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);

    // An odd-length (truncated IQ pair) stream still parses the pairs
    // it has.
    let bytes = vec![0x80u8; 2001];
    let cap = read_rtl_u8(&bytes[..], FS, F_SW).expect("odd-length stream must parse");
    assert_eq!(cap.samples.len(), 1000);
}

#[test]
fn impaired_corpus_still_never_panics() {
    let stack = [
        Impairment::ClockDrift { ppm: 300.0 },
        Impairment::AgcStep { at_s: 0.005, gain: 0.4 },
        Impairment::DroppedSamples { at_s: 0.004, count: 5_000 },
        Impairment::ImpulseBurst { at_s: 0.002, duration_s: 0.01, amplitude: 3.0 },
        Impairment::Clipping { level: 0.2 },
    ];
    let rx = receiver();
    let detector = Detector::new(DetectorConfig::new(F_SW));
    for (label, mut cap) in corpus() {
        apply_all(&mut cap, &stack, 0xDEAD_BEEF);
        let _ = rx.receive(&cap).map_err(|e| format!("{label}: {e}"));
        let _ = rx.demodulate(&cap);
        let _ = detector.detect(&cap);
    }
}
