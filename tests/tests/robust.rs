//! Property-style robustness suite for the sync-robust marker code.
//!
//! The marker layer's contract is statistical, not per-instance: over
//! a seeded family of random insertion/deletion/substitution channels
//! the marker-coded frame must keep delivering payload bytes where the
//! rigid frame collapses. These tests pin that contract at the bit
//! level (a synthetic indel channel over the framed bits) and at the
//! capture level (the severity stacks over the real chain), with every
//! random choice derived from an explicit seed so a failure is a
//! one-line repro.

use emsc_core::chain::{Chain, Setup};
use emsc_core::covert_run::CovertScenario;
use emsc_core::laptop::Laptop;
use emsc_covert::frame::{frame_payload, salvage_marker_bits, try_deframe, FrameConfig};
use emsc_covert::marker::MarkerConfig;
use emsc_sdr::impair::severity_stack;

/// Deterministic xorshift stream in [0, 1).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Pushes framed bits through a random indel/substitution channel.
/// Events are drawn per input bit: delete with `p_del`, duplicate
/// (insert) with `p_ins`, flip with `p_sub`.
fn indel_channel(bits: &[u8], seed: u64, p_sub: f64, p_del: f64, p_ins: f64) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::with_capacity(bits.len());
    for &b in bits {
        let r = rng.next_f64();
        if r < p_del {
            continue;
        }
        let bit = if rng.next_f64() < p_sub { b ^ 1 } else { b };
        out.push(bit);
        if r >= p_del && r < p_del + p_ins {
            out.push(bit);
        }
    }
    out
}

fn pseudo_payload(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed ^ 0x243F_6A88_85A3_08D3;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xFF) as u8
        })
        .collect()
}

/// Payload bytes a decode delivered at their claimed position.
fn positional_bytes(decoded: &[u8], payload: &[u8]) -> usize {
    decoded.iter().zip(payload).filter(|(a, b)| a == b).count()
}

#[test]
fn marker_code_beats_rigid_over_random_deletion_channels() {
    // 32 seeded channels at a deletion rate (0.4 %) that almost always
    // lands at least one indel inside the body. Scored by payload
    // bytes delivered at the right position — the quantity E6 calls
    // goodput. The marker code must deliver the overwhelming majority
    // of bytes; the rigid frame, whose bit clock never recovers from
    // the first deletion, must deliver well under half as many.
    let rigid_cfg = FrameConfig::default();
    let marker_cfg = FrameConfig { marker: Some(MarkerConfig::standard()), ..rigid_cfg };
    let payload = pseudo_payload(48, 7);
    let (mut marker_total, mut rigid_total) = (0usize, 0usize);
    let trials = 32;
    for seed in 0..trials as u64 {
        for (cfg, total) in [(marker_cfg, &mut marker_total), (rigid_cfg, &mut rigid_total)] {
            let bits = frame_payload(&payload, cfg);
            let rx = indel_channel(&bits, seed, 0.001, 0.004, 0.0);
            if let Ok(d) = try_deframe(&rx, cfg, 1) {
                *total += positional_bytes(&d.payload, &payload);
            }
        }
    }
    let possible = trials * payload.len();
    assert!(
        marker_total * 10 >= possible * 8,
        "marker delivered {marker_total}/{possible} positional bytes — expected ≥ 80 %"
    );
    assert!(
        rigid_total * 2 < marker_total,
        "rigid delivered {rigid_total} vs marker {marker_total} — deletions should cripple it"
    );
}

#[test]
fn marker_code_is_transparent_on_substitution_only_channels() {
    // With no indels the marker layer must not cost correctness: at a
    // substitution rate within the Hamming budget, both framings
    // decode, and the marker decode is exact in the vast majority of
    // trials.
    let marker_cfg =
        FrameConfig { marker: Some(MarkerConfig::standard()), ..FrameConfig::default() };
    let payload = pseudo_payload(32, 11);
    let trials = 32;
    let mut exact = 0usize;
    for seed in 0..trials as u64 {
        let bits = frame_payload(&payload, marker_cfg);
        let rx = indel_channel(&bits, seed ^ 0xABCD, 0.002, 0.0, 0.0);
        let d = try_deframe(&rx, marker_cfg, 1).unwrap_or_else(|e| {
            panic!("substitution-only channel (seed {seed}) lost the frame: {e:?}")
        });
        exact += usize::from(d.payload == payload);
    }
    assert!(
        exact * 10 >= trials * 9,
        "only {exact}/{trials} exact decodes under 0.2 % substitutions"
    );
}

#[test]
fn insertion_channels_are_absorbed_by_the_drift_tracker() {
    // Duplicated bits (the receiver's oversampling failure mode) are
    // the mirror image of deletions; the drift tracker must re-anchor
    // on the next marker just the same.
    let marker_cfg =
        FrameConfig { marker: Some(MarkerConfig::standard()), ..FrameConfig::default() };
    let payload = pseudo_payload(48, 13);
    let trials = 32;
    let mut total = 0usize;
    for seed in 0..trials as u64 {
        let bits = frame_payload(&payload, marker_cfg);
        let rx = indel_channel(&bits, seed ^ 0x5150, 0.001, 0.0, 0.004);
        if let Ok(d) = try_deframe(&rx, marker_cfg, 1) {
            total += positional_bytes(&d.payload, &payload);
        }
    }
    let possible = trials * payload.len();
    assert!(
        total * 10 >= possible * 8,
        "insertions: {total}/{possible} positional bytes — expected ≥ 80 %"
    );
}

#[test]
fn severity_sweep_on_the_real_chain_matches_the_e6_story() {
    // Capture-level mirror of experiment E6 at a single cheap cell per
    // severity: the marker mode keeps delivering payload bytes at
    // every severity, including the severe stack that silences the
    // rigid mode entirely (decode failure AND no salvageable lattice
    // is the only outcome we reject).
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    let base = CovertScenario::for_laptop(&laptop, chain);
    let mut marker_sc = base.clone();
    marker_sc.tx.frame.marker = Some(MarkerConfig::standard());
    let payload = pseudo_payload(16, 19);

    for severity in 0..=4usize {
        let stack = severity_stack(severity);
        let outcome = marker_sc.run_impaired(&payload, 19, &stack, 7 + severity as u64);
        let delivered = match &outcome.deframed {
            Some(d) => positional_bytes(&d.payload, &payload) * 8,
            None => salvage_marker_bits(&outcome.report.bits, marker_sc.tx.frame)
                .map_or(0, |s| s.bits.len()),
        };
        assert!(delivered > 0, "severity {severity}: marker mode delivered nothing");
        if severity <= 2 {
            let d = outcome
                .deframed
                .as_ref()
                .unwrap_or_else(|| panic!("severity {severity} must deframe, not merely salvage"));
            assert_eq!(d.payload, payload, "severity {severity}: inexact decode");
        }
    }

    // The severe stack must still kill the rigid mode — otherwise the
    // marker comparisons above prove nothing.
    let rigid = base.run_impaired(&payload, 19, &severity_stack(4), 11);
    assert!(
        rigid.deframed.as_ref().is_none_or(|d| positional_bytes(&d.payload, &payload) == 0),
        "severity 4 unexpectedly left the rigid frame intact"
    );
}
