//! Thread-count independence of the experiment runtime.
//!
//! Every experiment fans its (scenario × run) cells across the
//! `emsc-runtime` worker pool, with each cell's RNG seed derived from
//! the cell index rather than from scheduling order. These tests pin
//! the resulting guarantee: the typed rows an experiment returns are
//! bit-identical whether the pool has one worker or many.

use emsc_core::chain::{Chain, Setup};
use emsc_core::covert_run::CovertScenario;
use emsc_core::experiments::tables::{measure_channel_grid, ChannelRow, TableScale};
use emsc_core::laptop::Laptop;
use emsc_runtime::{seed_for, with_threads};

fn small_grid(seed: u64) -> Vec<ChannelRow> {
    // Two laptops × two runs keeps this under a second while still
    // exercising multi-cell scheduling on the pool.
    let scenarios: Vec<(String, CovertScenario)> = Laptop::all()
        .iter()
        .take(2)
        .map(|laptop| {
            let chain = Chain::new(laptop, Setup::NearField);
            (laptop.model.to_string(), CovertScenario::for_laptop(laptop, chain))
        })
        .collect();
    let scale = TableScale { payload_bytes: 16, runs: 2 };
    measure_channel_grid(&scenarios, scale, seed)
}

/// Field-for-field bit equality of two row sets. Float fields are
/// compared via `to_bits` so `-0.0 != 0.0` and NaN payloads would be
/// caught too.
fn assert_rows_bit_identical(a: &[ChannelRow], b: &[ChannelRow]) {
    assert_eq!(a.len(), b.len(), "row counts differ");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.label, rb.label);
        assert_eq!(ra.ber.to_bits(), rb.ber.to_bits(), "ber for {}", ra.label);
        assert_eq!(ra.tr_bps.to_bits(), rb.tr_bps.to_bits(), "tr_bps for {}", ra.label);
        assert_eq!(ra.ip.to_bits(), rb.ip.to_bits(), "ip for {}", ra.label);
        assert_eq!(ra.dp.to_bits(), rb.dp.to_bits(), "dp for {}", ra.label);
        assert_eq!(
            ra.recovery_rate.to_bits(),
            rb.recovery_rate.to_bits(),
            "recovery_rate for {}",
            ra.label
        );
        assert_eq!(ra.decode_failures, rb.decode_failures, "decode_failures for {}", ra.label);
    }
}

#[test]
fn channel_grid_rows_are_identical_across_thread_counts() {
    let seed = 2020;
    let serial = with_threads(1, || small_grid(seed));
    for threads in [2, 4, 7] {
        let pooled = with_threads(threads, || small_grid(seed));
        assert_rows_bit_identical(&serial, &pooled);
    }
}

#[test]
fn fused_streamed_runs_match_batch_across_thread_counts() {
    // The grid above now runs every cell through the fused streamed
    // path; this pins the underlying per-run guarantee directly: a
    // streamed covert run yields the batch path's metrics bit for bit,
    // at any worker count.
    let laptop = Laptop::all()[0].clone();
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = CovertScenario::for_laptop(&laptop, chain);
    let payload = b"fused-thread-sweep";
    let batch = with_threads(1, || scenario.run(payload, 2020));
    for threads in [1usize, 3] {
        let streamed = with_threads(threads, || scenario.run_streamed(payload, 2020));
        assert_eq!(streamed.report.bits, batch.report.bits, "{threads} threads");
        assert_eq!(
            streamed.alignment.ber().to_bits(),
            batch.alignment.ber().to_bits(),
            "{threads} threads"
        );
        assert_eq!(
            streamed.transmission_rate_bps.to_bits(),
            batch.transmission_rate_bps.to_bits(),
            "{threads} threads"
        );
        assert_eq!(streamed.recovered(payload), batch.recovered(payload), "{threads} threads");
    }
}

#[test]
fn channel_grid_rows_depend_on_the_seed() {
    // Guard against the degenerate way the test above could pass:
    // rows that ignore the seed entirely.
    let a = with_threads(1, || small_grid(2020));
    let b = with_threads(1, || small_grid(2021));
    assert!(
        a.iter().zip(&b).any(|(ra, rb)| ra.ber.to_bits() != rb.ber.to_bits()
            || ra.tr_bps.to_bits() != rb.tr_bps.to_bits()),
        "different base seeds must change at least one row"
    );
}

#[test]
fn impairment_sweep_is_identical_across_thread_counts() {
    use emsc_core::experiments::impairments::impairment_sweep;
    let scale = TableScale { payload_bytes: 16, runs: 1 };
    let serial = with_threads(1, || impairment_sweep(scale, 2020));
    let pooled = with_threads(3, || impairment_sweep(scale, 2020));
    assert_eq!(serial.len(), pooled.len());
    for (ra, rb) in serial.iter().zip(&pooled) {
        assert_eq!(ra.severity, rb.severity);
        assert_eq!(ra.label, rb.label);
        assert_eq!(ra.ber.to_bits(), rb.ber.to_bits(), "ber at severity {}", ra.severity);
        assert_eq!(ra.ip.to_bits(), rb.ip.to_bits(), "ip at severity {}", ra.severity);
        assert_eq!(ra.dp.to_bits(), rb.dp.to_bits(), "dp at severity {}", ra.severity);
        assert_eq!(
            ra.recovery_rate.to_bits(),
            rb.recovery_rate.to_bits(),
            "recovery_rate at severity {}",
            ra.severity
        );
        assert_eq!(
            ra.decode_failures, rb.decode_failures,
            "decode_failures at severity {}",
            ra.severity
        );
    }
}

#[test]
fn robust_sweep_is_identical_across_thread_counts_and_meets_e6_acceptance() {
    use emsc_core::experiments::robust::robust_sweep;
    let scale = TableScale { payload_bytes: 16, runs: 1 };
    let serial = with_threads(1, || robust_sweep(scale, 19));
    let pooled = with_threads(3, || robust_sweep(scale, 19));
    assert_eq!(serial.len(), pooled.len(), "row counts differ");
    for (ra, rb) in serial.iter().zip(&pooled) {
        let at = format!("severity {} mode {}", ra.severity, ra.mode);
        assert_eq!(ra.severity, rb.severity);
        assert_eq!(ra.label, rb.label, "label at {at}");
        assert_eq!(ra.mode, rb.mode, "mode at {at}");
        assert_eq!(ra.ber.to_bits(), rb.ber.to_bits(), "ber at {at}");
        assert_eq!(ra.dp.to_bits(), rb.dp.to_bits(), "dp at {at}");
        assert_eq!(ra.goodput_bps.to_bits(), rb.goodput_bps.to_bits(), "goodput at {at}");
        assert_eq!(ra.recovery_rate.to_bits(), rb.recovery_rate.to_bits(), "recovery at {at}");
        assert_eq!(ra.decode_failures, rb.decode_failures, "decode_failures at {at}");
        assert_eq!(ra.resyncs, rb.resyncs, "resyncs at {at}");
        assert_eq!(ra.markers_missed, rb.markers_missed, "markers_missed at {at}");
        assert_eq!(ra.corrected, rb.corrected, "corrected at {at}");
        assert_eq!(
            ra.selected_rate_bps.to_bits(),
            rb.selected_rate_bps.to_bits(),
            "selected_rate at {at}"
        );
        assert_eq!(ra.probes, rb.probes, "probes at {at}");
        assert_eq!(ra.retransmits, rb.retransmits, "retransmits at {at}");
    }
    // E6 acceptance on the same rows: at the severe stack the rigid
    // mode delivers nothing while marker and adaptive still deliver,
    // and the controller settles strictly below its clean-channel rate.
    let row = |sev: usize, mode: &str| {
        serial
            .iter()
            .find(|r| r.severity == sev && r.mode == mode)
            .unwrap_or_else(|| panic!("missing row: severity {sev} mode {mode}"))
    };
    assert_eq!(row(4, "rigid").goodput_bps, 0.0, "severity 4 must silence the rigid mode");
    assert!(row(4, "marker").goodput_bps > 0.0, "marker mode must deliver at severity 4");
    assert!(row(4, "adaptive").goodput_bps > 0.0, "adaptive mode must deliver at severity 4");
    assert!(
        row(4, "adaptive").selected_rate_bps < row(0, "adaptive").selected_rate_bps,
        "the controller must settle strictly below its clean-channel rate at severity 4"
    );
}

#[test]
fn streaming_sessions_are_identical_across_thread_counts() {
    use emsc_core::experiments::streaming::streaming_sessions;
    let serial = with_threads(1, || streaming_sessions(2020));
    let pooled = with_threads(4, || streaming_sessions(2020));
    assert_eq!(serial.len(), pooled.len(), "row counts differ");
    for (ra, rb) in serial.iter().zip(&pooled) {
        assert_eq!(ra.sensor, rb.sensor);
        assert_eq!(ra.seed, rb.seed, "seed for {}", ra.sensor);
        assert_eq!(ra.samples, rb.samples, "samples for {}", ra.sensor);
        assert_eq!(ra.matches_batch, rb.matches_batch, "matches_batch for {}", ra.sensor);
        // The outcome string encodes the decoded bit/burst count or
        // the exact typed error, so string equality pins the result.
        assert_eq!(ra.outcome, rb.outcome, "outcome for {}", ra.sensor);
        assert!(ra.matches_batch, "{} diverged from batch", ra.sensor);
    }
}

#[test]
fn cell_seeds_do_not_collide_on_a_real_grid() {
    // The per-cell seeds an experiment derives must be distinct even
    // for adjacent base seeds and cell indices.
    let mut seen = std::collections::HashSet::new();
    for base in 2020..2024u64 {
        for cell in 0..64u64 {
            assert!(
                seen.insert(seed_for(base, cell)),
                "seed collision at base {base}, cell {cell}"
            );
        }
    }
}
