//! Allocation-count regression test for the streaming receive chain.
//!
//! A counting global allocator (the same harness `perf_report` uses)
//! watches the steady-state push path: once the grow-only buffers have
//! warmed up, pushing chunks through the DSP front end with a
//! caller-owned output buffer must not touch the heap at all, and the
//! full covert receiver may only pay the rare amortised doubling of
//! its accumulated energy/edge vectors.
//!
//! This file holds exactly one `#[test]`: the allocation counter is
//! process-global, so a second concurrently-running test in the same
//! binary would pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use emsc_core::chain::{Chain, Setup};
use emsc_core::laptop::Laptop;
use emsc_covert::rx::RxConfig;
use emsc_covert::stream::StreamingReceiver;
use emsc_pmu::workload::Program;
use emsc_sdr::stream::EnergyStream;
use emsc_sdr::Complex;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Heap allocations so far (monotonic).
fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// On-off-keyed capture samples at the corpus tuning, with a
/// deterministic xorshift noise floor — the same shape as
/// `perf_report`'s streaming bench input.
fn ook_samples(n: usize) -> Vec<Complex> {
    let bit_samples = 600; // 250 us at 2.4 Msps
    let mut state = 0x2020_u64;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = ((state & 0xFFFF) as f64 / 65535.0 - 0.5) * 0.05;
            let amp = if (i / bit_samples) % 2 == 0 { 0.5 } else { 0.02 };
            Complex::new(amp + noise, noise)
        })
        .collect()
}

#[test]
fn steady_state_streaming_is_allocation_free() {
    let samples = ook_samples(600_000);
    let chunks: Vec<&[Complex]> = samples.chunks(16 * 1024).collect();
    let warm = chunks.len() / 2;
    let measured = chunks.len() - warm;

    // 1. The DSP-layer chain with a caller-owned, reused output
    //    buffer: strictly zero heap traffic once warmed up. This is
    //    the contract DESIGN.md's scratch-buffer API promises for
    //    every `_into` kernel.
    let mut es = EnergyStream::new(64, &[0, 1, 5], 24).expect("valid stream config");
    let mut out = Vec::new();
    for c in &chunks[..warm] {
        out.clear();
        es.push_into(c, &mut out);
    }
    let before = allocations();
    for c in &chunks[warm..] {
        out.clear();
        es.push_into(c, &mut out);
    }
    let es_allocs = allocations() - before;
    assert_eq!(es_allocs, 0, "EnergyStream::push_into allocated {es_allocs}x in steady state");

    // 2. The full covert receiver accumulates its decimated
    //    energy/edge history across the stream, so Vec doubling may
    //    still fire on a rare chunk; everything per-chunk (mixer,
    //    FIR, sliding DFT, smoothing, edge convolution) must be free.
    let mut rx = StreamingReceiver::new(RxConfig::new(250e3, 250e-6), 2.4e6, 250e3)
        .expect("valid receiver config");
    for c in &chunks[..warm] {
        rx.push(c);
    }
    let mut total = 0usize;
    let mut alloc_chunks = 0usize;
    for c in &chunks[warm..] {
        let b = allocations();
        rx.push(c);
        let d = allocations() - b;
        total += d;
        alloc_chunks += usize::from(d > 0);
    }
    assert!(
        (total as f64) < 0.25 * measured as f64,
        "streaming receiver: {total} allocations over {measured} chunks"
    );
    assert!(
        alloc_chunks * 4 <= measured,
        "{alloc_chunks}/{measured} chunks allocated — expected only rare amortised growth"
    );

    // 3. The fused TX producer: once its thread-local scratch arena
    //    has warmed up on a first run, draining a stream block by
    //    block must not touch the heap at all — the digitised block
    //    buffer is recycled and `digitize_window_into` reuses its
    //    capacity.
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    let program = Program::alternating(300e-6, 300e-6, 6, chain.machine.steady_state_ips());
    let trace = chain.machine.run(&program, 9);
    // Warm run: grows the pooled arena to this trace's size and the
    // block buffer to the block size, then recycles both.
    drop(chain.stream_trace(trace.clone(), 9).into_run());
    let mut stream = chain.stream_trace(trace, 9);
    let blocks = stream.blocks_total();
    let before = allocations();
    let mut drained = 0usize;
    while let Some(b) = stream.next_block() {
        std::hint::black_box(b.len());
        drained += 1;
    }
    let fused_allocs = allocations() - before;
    assert_eq!(drained, blocks);
    assert_eq!(
        fused_allocs, 0,
        "fused producer allocated {fused_allocs}x over {blocks} steady-state blocks"
    );

    // 4. The Hamming(7,4) decoder proper: it returns its nibble in a
    //    fixed array, so decoding any number of codewords in a hot
    //    loop — the inner kernel of every deframe attempt the anchor
    //    candidate chain makes — is strictly heap-free.
    let codewords: Vec<[u8; 7]> = (0..1024u32)
        .map(|i| {
            let mut cw = emsc_covert::coding::hamming74_encode(&[
                (i & 1) as u8,
                ((i >> 1) & 1) as u8,
                ((i >> 2) & 1) as u8,
                ((i >> 3) & 1) as u8,
            ]);
            cw[(i % 7) as usize] ^= (i % 3 == 0) as u8; // sprinkle correctable errors
            cw
        })
        .collect();
    let before = allocations();
    let mut corrected = 0usize;
    for cw in &codewords {
        let (nibble, fixed) = emsc_covert::coding::hamming74_decode(cw);
        std::hint::black_box(nibble);
        corrected += usize::from(fixed);
    }
    let decode_allocs = allocations() - before;
    assert!(corrected > 0, "the error sprinkle above should exercise the corrector");
    assert_eq!(decode_allocs, 0, "hamming74_decode allocated {decode_allocs}x over 1024 codewords");
}
