//! Streaming/batch equivalence over the torture corpus.
//!
//! The streaming receive chain's contract is *bit-identity*: for any
//! capture the batch pipeline accepts (or rejects with a typed error),
//! feeding the same samples through the streaming state machines in
//! chunks of ANY size must produce the exact same report — same bits,
//! same floating-point intermediates, same typed error. This suite
//! pins that contract over every torture-corpus capture at chunk
//! sizes 1, 7, 64 KiB and whole-capture, for the informed receiver,
//! the blind receiver and the keystroke detector.

use emsc_core::chain::{Chain, Setup};
use emsc_core::fused::ChainStream;
use emsc_core::laptop::Laptop;
use emsc_covert::rx::{Receiver, RxConfig, RxError, RxReport};
use emsc_covert::stream::StreamingReceiver;
use emsc_keylog::detect::{DetectError, DetectionReport, Detector, DetectorConfig};
use emsc_keylog::stream::StreamingDetector;
use emsc_pmu::workload::Program;
use emsc_runtime::with_threads;
use emsc_sdr::Capture;
use emsc_tests::{corpus, noise, FS, F_SW};

/// Chunk sizes every capture is replayed at (`usize::MAX` = whole).
const CHUNKINGS: [usize; 4] = [1, 7, 64 * 1024, usize::MAX];

fn rx_config() -> RxConfig {
    RxConfig::new(F_SW, 250e-6)
}

fn stream_receive(cap: &Capture, chunk: usize, blind: bool) -> Result<RxReport, RxError> {
    let mut rx = if blind {
        StreamingReceiver::new_blind(rx_config(), cap.sample_rate, cap.center_freq)?
    } else {
        StreamingReceiver::new(rx_config(), cap.sample_rate, cap.center_freq)?
    };
    for c in cap.samples.chunks(chunk.max(1)) {
        rx.push(c);
    }
    rx.finish()
}

fn stream_detect(cap: &Capture, chunk: usize) -> Result<DetectionReport, DetectError> {
    let mut det =
        StreamingDetector::new(DetectorConfig::new(F_SW), cap.sample_rate, cap.center_freq)?;
    for c in cap.samples.chunks(chunk.max(1)) {
        det.push(c);
    }
    det.finish()
}

#[test]
fn informed_receiver_is_bit_identical_to_batch_on_the_corpus() {
    let batch_rx = Receiver::new(rx_config());
    for (label, cap) in corpus() {
        let batch = batch_rx.receive(&cap);
        for chunk in CHUNKINGS {
            let streamed = stream_receive(&cap, chunk, false);
            assert_eq!(streamed, batch, "{label} diverged at chunk size {chunk}");
        }
    }
}

#[test]
fn blind_receiver_is_bit_identical_to_batch_on_the_corpus() {
    let batch_rx = Receiver::new(rx_config());
    for (label, cap) in corpus() {
        let batch = batch_rx.receive_blind(&cap);
        for chunk in CHUNKINGS {
            let streamed = stream_receive(&cap, chunk, true);
            assert_eq!(streamed, batch, "{label} (blind) diverged at chunk size {chunk}");
        }
    }
}

#[test]
fn keylog_detector_is_bit_identical_to_batch_on_the_corpus() {
    let batch_det = Detector::new(DetectorConfig::new(F_SW));
    for (label, cap) in corpus() {
        let batch = batch_det.try_detect(&cap);
        for chunk in CHUNKINGS {
            let streamed = stream_detect(&cap, chunk);
            assert_eq!(streamed, batch, "{label} (keylog) diverged at chunk size {chunk}");
        }
    }
}

#[test]
fn degenerate_sample_rates_error_identically() {
    for rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        let cap = Capture { samples: noise(10_000, 3), sample_rate: rate, center_freq: F_SW };
        let batch = Receiver::new(rx_config()).receive(&cap);
        let streamed = StreamingReceiver::new(rx_config(), cap.sample_rate, cap.center_freq)
            .and_then(|mut rx| {
                rx.push(&cap.samples);
                rx.finish()
            });
        assert_eq!(streamed, batch, "sample rate {rate}");
        assert!(
            StreamingDetector::new(DetectorConfig::new(F_SW), rate, F_SW).is_err(),
            "keylog sample rate {rate} must be rejected at construction"
        );
    }
    // Off-band tuning is NoCarrier in both paths (at construction for
    // the streaming receiver, at receive for batch).
    let off = Capture { samples: noise(10_000, 3), sample_rate: FS, center_freq: 1e9 };
    assert_eq!(Receiver::new(rx_config()).receive(&off), Err(RxError::NoCarrier));
    assert!(matches!(
        StreamingReceiver::new(rx_config(), off.sample_rate, off.center_freq),
        Err(RxError::NoCarrier)
    ));
}

#[test]
fn streaming_survives_single_sample_pushes_interleaved_with_bulk() {
    // Mixed chunk sizes within ONE stream: state carry-over must not
    // depend on a uniform chunking.
    for (label, cap) in corpus() {
        let batch = Receiver::new(rx_config()).receive(&cap);
        let streamed = StreamingReceiver::new(rx_config(), cap.sample_rate, cap.center_freq)
            .and_then(|mut rx| {
                let mut i = 0usize;
                let mut step = 1usize;
                while i < cap.samples.len() {
                    let end = (i + step).min(cap.samples.len());
                    rx.push(&cap.samples[i..end]);
                    i = end;
                    step = (step * 3 + 1) % 4096 + 1;
                }
                rx.finish()
            });
        assert_eq!(streamed, batch, "{label} diverged under mixed chunking");
    }
}

#[test]
fn fused_tx_chain_is_bit_identical_to_staged_at_any_block_size_and_thread_count() {
    // The TX-side mirror of the receiver contract above: the fused
    // producer (synth→AWGN→digitise per cache-resident block) must
    // reproduce the staged oracle's capture bit for bit at every block
    // size and worker count. A short trace keeps the deliberately
    // pathological 1-sample blocking affordable in debug builds.
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::ThroughWall);
    let program = Program::alternating(200e-6, 200e-6, 4, chain.machine.steady_state_ips());
    let trace = chain.machine.run(&program, 41);
    let staged = with_threads(1, || chain.run_trace_staged(trace.clone(), 41));
    for threads in [1usize, 3] {
        // The staged oracle must itself be thread-count independent…
        let staged_t = with_threads(threads, || chain.run_trace_staged(trace.clone(), 41));
        assert_eq!(staged_t.capture.samples, staged.capture.samples, "staged at {threads} threads");
        // …and the fused producer must match it at every blocking.
        for block in [1usize, 7, 4096, usize::MAX] {
            let fused = with_threads(threads, || {
                let mut stream = ChainStream::with_block_samples(&chain, trace.clone(), 41, block);
                let mut samples = Vec::with_capacity(stream.total_samples());
                while let Some(b) = stream.next_block() {
                    samples.extend_from_slice(b);
                }
                samples
            });
            assert_eq!(fused.len(), staged.capture.samples.len());
            for (i, (a, b)) in fused.iter().zip(&staged.capture.samples).enumerate() {
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "block {block}, {threads} threads: sample {i} differs"
                );
            }
        }
    }
}

#[test]
fn marker_deframer_is_chunk_oblivious_on_an_impaired_capture() {
    // End-to-end marker-coding mirror of the bit-identity contract: a
    // marker-coded frame is sent over the real chain, the capture is
    // corrupted with the severity-3 impairment stack (clock drift,
    // AGC step, dropped samples, burst, clipping), and then BOTH
    // streaming layers must be chunk-oblivious — the sample-level
    // receiver must reproduce the batch demodulated bits, and the
    // bit-level deframer fed those bits must reproduce the batch
    // anchor-chain decode.
    use emsc_core::covert_run::CovertScenario;
    use emsc_covert::frame::try_deframe;
    use emsc_covert::marker::MarkerConfig;
    use emsc_covert::stream::{Deframer, FrameEvent};
    use emsc_sdr::impair::severity_stack;

    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    let mut scenario = CovertScenario::for_laptop(&laptop, chain);
    scenario.tx.frame.marker = Some(MarkerConfig::standard());
    let payload = b"sync-robust marker coding";
    let outcome = scenario.run_impaired(payload, 23, &severity_stack(3), 7);
    let cap = &outcome.chain_run.capture;

    // Sample level: the streaming receiver on the impaired capture.
    for chunk in CHUNKINGS {
        let streamed =
            StreamingReceiver::new(scenario.rx.clone(), cap.sample_rate, cap.center_freq)
                .and_then(|mut rx| {
                    for c in cap.samples.chunks(chunk.max(1).min(cap.samples.len())) {
                        rx.push(c);
                    }
                    rx.finish()
                })
                .expect("impaired capture still demodulates");
        assert_eq!(streamed, outcome.report, "receiver diverged at chunk size {chunk}");
    }

    // Bit level: the streaming deframer against the batch anchor scan.
    let batch = try_deframe(&outcome.report.bits, scenario.tx.frame, 1)
        .expect("severity 3 is within the marker code's budget");
    assert_eq!(&batch.payload, payload, "batch decode must survive severity 3");
    for chunk in [1usize, 7, 64, usize::MAX] {
        let mut d = Deframer::new(scenario.tx.frame, 1);
        let mut events = Vec::new();
        for c in outcome.report.bits.chunks(chunk.min(outcome.report.bits.len())) {
            events.extend(d.push(c));
        }
        events.extend(d.finish());
        let frames: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                FrameEvent::Frame(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(frames.len(), 1, "bit chunk {chunk}: {events:?}");
        assert_eq!(*frames[0], batch, "deframer diverged at bit chunk size {chunk}");
    }
}

#[test]
fn empty_pushes_are_no_ops() {
    let (label, cap) = corpus().into_iter().find(|(l, _)| *l == "truncated-mid-frame").unwrap();
    let batch = Receiver::new(rx_config()).receive(&cap);
    let streamed =
        StreamingReceiver::new(rx_config(), cap.sample_rate, cap.center_freq).and_then(|mut rx| {
            rx.push(&[]);
            for c in cap.samples.chunks(777) {
                rx.push(c);
                rx.push(&[]);
            }
            rx.finish()
        });
    assert_eq!(streamed, batch, "{label} diverged with empty pushes");
}
