//! E5 service soak: the acceptance criteria of the supervised,
//! fault-tolerant capture daemon.
//!
//! One full soak run (ten sensors, escalating fault schedule) is
//! executed under `with_threads(1)` and `with_threads(3)` and the two
//! outcomes — every decoded bit, restart count, quarantine decision,
//! backoff tick and event-log line — must be **bit-identical**, and
//! identical again on a rerun with the same seed. On top of the
//! determinism contract, the run itself is scored:
//!
//! - no injected fault crashes the daemon (the soak returning at all,
//!   with every sensor terminal, is the assertion);
//! - every faulted sensor was restarted or quarantined per policy;
//! - every sensor that completed — healthy or restarted — produced
//!   reports equal to the unfaulted batch reference for its capture.
//!
//! The severity-max schedule is exercised separately: every fault type
//! aimed at one sensor at once, plus neighbours, still panics nowhere.

use emsc_runtime::with_threads;
use emsc_service::soak::{soak, SoakOutcome};
use emsc_service::{
    render_soak_rows, Fault, FaultEvent, FaultPlan, LifecycleState, SensorKind, SensorPolicy,
    SensorSpec, ServiceConfig, Supervisor,
};

/// The whole E5 acceptance suite runs on one pair of soak outcomes:
/// the fleet build is the expensive part, so the determinism,
/// robustness and reference checks all share it.
#[test]
fn soak_is_thread_invariant_rerunnable_and_meets_policy() {
    let seed = 2020;
    let serial = with_threads(1, || soak(seed));
    let pooled = with_threads(3, || soak(seed));

    // 1. Bit-identity across worker-pool widths and across reruns.
    assert_eq!(serial, pooled, "soak diverged between EMSC_THREADS=1 and EMSC_THREADS=3");
    let rerun = with_threads(3, || soak(seed));
    assert_eq!(pooled, rerun, "soak is not rerun-stable under one seed");

    check_policy_and_references(&serial);

    // A different seed must actually change the run (fault jitter,
    // captures, backoff) — otherwise the seed is decorative.
    let other = soak(seed + 1);
    assert_ne!(serial.rows, other.rows, "the soak ignores its seed");
}

/// Scores one soak outcome against the E5 acceptance criteria.
fn check_policy_and_references(outcome: &SoakOutcome) {
    let rows = &outcome.rows;
    assert_eq!(rows.len(), 10, "the E5 fleet is ten sensors");

    // Every sensor reached a terminal state: nothing crashed, nothing
    // hung (a non-terminal state here would mean max_ticks was hit).
    for (row, sensor) in rows.iter().zip(&outcome.report.sensors) {
        assert!(
            sensor.state.is_terminal(),
            "{} never went terminal: {:?}",
            row.sensor,
            sensor.state
        );
    }

    for (k, row) in rows.iter().enumerate() {
        let faulted = row.faults != "-";
        if faulted {
            // Every faulted sensor was handled per policy: restarted
            // (and finished its replay) or quarantined.
            assert!(
                row.restarts > 0 || row.state == "quarantined",
                "faulted sensor {k} ({}) was neither restarted nor quarantined: {row:?}",
                row.sensor
            );
        } else {
            // Healthy sensors ride through everyone else's faults at
            // full uptime, with no supervision intervention.
            assert_eq!(row.restarts, 0, "healthy sensor {k} ({}) restarted", row.sensor);
            assert_eq!(row.uptime_pct, 100.0, "healthy sensor {k} ({}) lost uptime", row.sensor);
            assert_eq!(row.state, "done");
        }
        // Whoever completed — healthy or restarted — matches the
        // unfaulted batch reference bit for bit.
        if let Some(matches) = row.matches_reference {
            assert!(
                matches,
                "sensor {k} ({}) diverged from its batch reference: {row:?}",
                row.sensor
            );
            assert!(row.sessions > 0);
        }
    }

    // The doomed sensor is the one quarantine in the fleet, and it
    // drained its full restart budget first.
    let quarantined: Vec<&str> =
        rows.iter().filter(|r| r.state == "quarantined").map(|r| r.sensor.as_str()).collect();
    assert_eq!(quarantined, vec!["doomed front end"], "unexpected quarantine set");
    let doomed = rows.last().expect("fleet is non-empty");
    assert_eq!(doomed.restarts, SensorPolicy::default().restart.max_restarts);
    assert_eq!(doomed.sessions, 0, "a poisoned stream must not flush a report");

    // The rotating sensor flushed one report per pass.
    let rotating = rows.iter().find(|r| r.sensor == "rotating keylog").expect("rotating row");
    assert_eq!(rotating.sessions, 2, "rotation must flush a report per pass");

    // Bits were decoded despite faults: every faulted covert sensor
    // that completed still delivered its payload's bits.
    for row in rows.iter().filter(|r| r.faults != "-" && r.state == "done") {
        assert!(
            row.decoded_bits > 0 || row.bursts > 0,
            "faulted sensor {} completed without output: {row:?}",
            row.sensor
        );
    }

    // Rendering names every sensor and never flags a mismatch.
    let table = render_soak_rows(outcome);
    for row in rows {
        assert!(table.contains(&row.sensor), "table is missing {}", row.sensor);
    }
    assert!(!table.contains(" NO "), "table flags a reference mismatch:\n{table}");
}

/// Severity-max schedule: every fault type aimed at one sensor in one
/// run — including poison — while a healthy neighbour streams on. The
/// daemon must never panic, must end with both sensors terminal, and
/// must keep the neighbour's output equal to its batch reference.
#[test]
fn severity_max_schedule_never_crashes_the_daemon() {
    use emsc_core::experiments::streaming::keylog_capture;
    use emsc_core::session::SessionOutput;
    use emsc_keylog::detect::Detector;
    use emsc_runtime::seed_for;
    use emsc_service::ReplaySource;

    let seed = 99;
    let (cfg_a, cap_a) = keylog_capture(seed_for(seed, 0));
    let (cfg_b, cap_b) = keylog_capture(seed_for(seed, 1));
    let reference_b = SessionOutput::Keylog(Detector::new(cfg_b.clone()).try_detect(&cap_b));

    let policy = SensorPolicy { chunks_per_tick: 2, ..SensorPolicy::default() };
    let events = vec![
        FaultEvent { tick: 2, sensor: 0, fault: Fault::TruncateChunk { keep_frac: 0.0 } },
        FaultEvent { tick: 3, sensor: 0, fault: Fault::DropChunks { chunks: 3 } },
        FaultEvent { tick: 4, sensor: 0, fault: Fault::ReorderNext },
        FaultEvent { tick: 5, sensor: 0, fault: Fault::CorruptBurst { chunks: 2, nan_frac: 1.0 } },
        FaultEvent { tick: 6, sensor: 0, fault: Fault::Stall { ticks: 20 } },
        FaultEvent { tick: 7, sensor: 0, fault: Fault::Disconnect },
        FaultEvent { tick: 8, sensor: 0, fault: Fault::Poison },
    ];
    let mut daemon = Supervisor::new(ServiceConfig::default(), FaultPlan::new(events));
    daemon.add_sensor(SensorSpec {
        label: "victim".to_string(),
        kind: SensorKind::Keylog(cfg_a),
        source: Box::new(ReplaySource::new(cap_a, 4096)),
        policy,
    });
    daemon.add_sensor(SensorSpec {
        label: "neighbour".to_string(),
        kind: SensorKind::Keylog(cfg_b),
        source: Box::new(ReplaySource::new(cap_b, 4096)),
        policy,
    });
    let report = daemon.run();

    let victim = &report.sensors[0];
    assert!(
        victim.state.is_terminal(),
        "victim must end quarantined or done, got {:?}\nevents: {:#?}",
        victim.state,
        report.events
    );
    // Poison is permanent, so the only policy-conformant terminal
    // state for the victim is quarantine with a drained budget.
    assert_eq!(victim.state, LifecycleState::Quarantined);
    assert_eq!(victim.restarts, policy.restart.max_restarts);

    let neighbour = &report.sensors[1];
    assert_eq!(neighbour.state, LifecycleState::Done);
    assert_eq!(neighbour.restarts, 0, "collateral restart on the neighbour");
    assert_eq!(neighbour.sessions.len(), 1);
    assert_eq!(neighbour.sessions[0].output, reference_b, "neighbour diverged from batch");
}
