//! Workspace integration tests for the keylogging exploit.

use emsc_core::chain::{Chain, Setup};
use emsc_core::keylog_run::KeylogScenario;
use emsc_core::laptop::Laptop;

#[test]
fn keystrokes_are_detected_through_the_wall() {
    let laptop = Laptop::dell_precision();
    let chain = Chain::new(&laptop, Setup::ThroughWall);
    let scenario = KeylogScenario::standard(chain);
    let outcome = scenario.run("open sesame", 31);
    assert!(
        outcome.chars.tpr() > 0.85,
        "through-wall TPR {} (missed {})",
        outcome.chars.tpr(),
        outcome.chars.missed
    );
}

#[test]
fn detection_is_better_near_field_than_through_wall() {
    let laptop = Laptop::dell_precision();
    let text = "comparison of distances here";
    let near = KeylogScenario::standard(Chain::new(&laptop, Setup::NearField)).run(text, 13);
    let wall = KeylogScenario::standard(Chain::new(&laptop, Setup::ThroughWall)).run(text, 13);
    assert!(
        near.chars.tpr() >= wall.chars.tpr() - 1e-9,
        "near {} vs wall {}",
        near.chars.tpr(),
        wall.chars.tpr()
    );
}

#[test]
fn word_structure_is_recoverable() {
    let laptop = Laptop::dell_precision();
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = KeylogScenario::standard(chain);
    let text = "four small words here";
    let outcome = scenario.run(text, 55);
    // Word count within ±1 and most lengths correct.
    let diff = (outcome.words.predicted as i64 - outcome.words.actual as i64).unsigned_abs();
    assert!(diff <= 1, "predicted {} of {} words", outcome.words.predicted, outcome.words.actual);
    assert!(outcome.words.recall() > 0.7, "recall {}", outcome.words.recall());
}

#[test]
fn burst_durations_reflect_keystroke_handling() {
    // Detected burst durations must sit in the keystroke-handling
    // range (tens of ms), not at the interrupt scale.
    let laptop = Laptop::dell_precision();
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = KeylogScenario::standard(chain);
    let outcome = scenario.run("abcdef", 3);
    for b in &outcome.detection.bursts {
        assert!((0.03..0.25).contains(&b.duration_s), "burst duration {}", b.duration_s);
    }
}

#[test]
fn detection_is_robust_across_typist_skill_levels() {
    use emsc_keylog::typist::{Typist, TypistConfig};
    let laptop = Laptop::dell_precision();
    let text = "skill level sweep";
    for (label, cfg) in [
        ("professional", TypistConfig::professional()),
        ("average", TypistConfig::average()),
        ("hunt-and-peck", TypistConfig::hunt_and_peck()),
    ] {
        let chain = Chain::new(&laptop, Setup::NearField);
        let mut scenario = KeylogScenario::standard(chain);
        scenario.typist = Typist::new(cfg);
        let outcome = scenario.run(text, 23);
        assert!(
            outcome.chars.tpr() > 0.85,
            "{label}: TPR {} (missed {})",
            outcome.chars.tpr(),
            outcome.chars.missed
        );
    }
}
