//! Offline stand-in for `criterion`.
//!
//! Implements the macro and builder surface the `emsc-bench` harness
//! uses — `criterion_group!` / `criterion_main!`, `Criterion::
//! bench_function`, benchmark groups with `sample_size` /
//! `measurement_time` / `throughput`, `bench_with_input`,
//! `BenchmarkId` and `black_box` — backed by a simple median-of-samples
//! wall-clock timer instead of criterion's statistical machinery.
//!
//! Each benchmark prints one line:
//!
//! ```text
//! group/name              time:  [median 1.234 ms]  thrpt: [3.2 Melem/s]
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Just the parameter (the group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Things accepted as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The per-iteration timing driver passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    fn with(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher { samples: Vec::new(), sample_size, measurement_time }
    }

    /// Times `routine`, collecting up to `sample_size` samples or
    /// until the measurement budget runs out (whichever first).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, untimed.
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// Like [`Bencher::iter`], but with a fresh input per sample.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let budget_start = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut s = self.samples.clone();
        s.sort();
        s[s.len() / 2]
    }
}

/// Batch sizing hint (ignored by this stand-in).
#[derive(Debug, Clone, Copy, Default)]
pub enum BatchSize {
    /// One input per iteration.
    #[default]
    SmallInput,
    /// Large inputs.
    LargeInput,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(id: &str, median: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{id:<48} time: [{}]", fmt_duration(median));
    if let Some(tp) = throughput {
        let secs = median.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: [{:.2} Melem/s]", n as f64 / secs / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "  thrpt: [{:.2} MiB/s]",
                    n as f64 / secs / (1 << 20) as f64
                ));
            }
        }
    }
    println!("{line}");
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_time: Duration::from_secs(3) }
    }
}

impl Criterion {
    /// Sets the default sample count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the default measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher::with(self.sample_size, self.measurement_time);
        f(&mut b);
        report(&id, b.median(), None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Compatibility no-op (CLI arg parsing in the real crate).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::with(self.sample_size, self.measurement_time);
        f(&mut b);
        report(&id, b.median(), self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::with(self.sample_size, self.measurement_time);
        f(&mut b, input);
        report(&id, b.median(), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
