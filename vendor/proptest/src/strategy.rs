//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying a predicate (retrying a bounded
    /// number of times).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate {} rejected 1000 candidates", self.whence);
    }
}

/// Type-erased strategy handle (cheaply cloneable).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_new_value(rng)
    }
}

trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// Uniform choice among several strategies — the engine behind
/// `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let k = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[k].new_value(rng)
    }
}

// ---- Range strategies ----------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                let v = self.start + unit * (self.end - self.start);
                if v >= self.end { <$t>::from_bits(self.end.to_bits() - 1) } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                self.start() + unit * (self.end() - self.start())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// ---- Tuple strategies ----------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---- Arbitrary -----------------------------------------------------------

/// Types with a canonical "whole domain" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain uniform strategy for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        // Finite floats spanning a wide magnitude range, both signs.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.next_u64() % 61) as i32 - 30;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * unit * 2f64.powi(exp)
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// The canonical strategy for a type: `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}
