//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`
//! headers), [`Strategy`] with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`any`], [`prop_oneof!`], `prop_assert!` /
//! `prop_assert_eq!`, and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design:
//!
//! - **Deterministic**: every test case is generated from a seed
//!   derived from the test name and case index, so failures reproduce
//!   exactly on every run and every machine.
//! - **No shrinking**: a failing case reports its case number and
//!   message; it is not minimised.
//! - **Default case count is 64** (the real default is 256); tests
//!   that need more override it with `ProptestConfig::with_cases`.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};

/// The body of a generated property test: `Ok(())` on success, an
/// error with a message when a `prop_assert!` fires.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Defines property tests.
///
/// ```ignore
/// # // `#[test]` inside a doctest never runs; compile-check only.
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each `#[test] fn name(pat in strategy, ..) { .. }`
/// item of a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($($cfg:tt)*); ) => {};
    (@cfg ($($cfg:tt)*);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $($cfg)*;
            let runner = $crate::TestRunner::new(config);
            runner.run(
                stringify!($name),
                &($($strat,)+),
                |($($pat,)+)| { $body Ok(()) },
            );
        }
        $crate::__proptest_items! { @cfg ($($cfg)*); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with the generating inputs reported) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Rejects the current case (counts as a skip, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Picks uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}
