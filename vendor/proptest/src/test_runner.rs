//! The case loop, configuration, and the deterministic RNG behind it.

use crate::strategy::Strategy;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 1024 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert!` failed.
    Fail(String),
    /// A `prop_assume!` rejected the inputs.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic generator driving strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary 64-bit value.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Runs a strategy/closure pair for a configured number of cases.
#[derive(Debug, Clone)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `body` against `cases` values drawn from `strategy`.
    /// The RNG seed for case `i` of test `name` is `fnv(name) + i`, so
    /// every run of every build generates the same inputs.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first case whose
    /// body returns `TestCaseError::Fail`.
    pub fn run<S, F>(&self, name: &str, strategy: &S, body: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name.as_bytes());
        let mut rejects = 0u32;
        let mut case = 0u32;
        let mut draws = 0u64;
        while case < self.config.cases {
            let mut rng = TestRng::seed_from_u64(base.wrapping_add(draws));
            draws += 1;
            let value = strategy.new_value(&mut rng);
            match body(value) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    assert!(
                        rejects <= self.config.max_global_rejects,
                        "{name}: too many prop_assume! rejections ({why})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{name}: case {case} (seed {:#x}) failed: {msg}",
                        base.wrapping_add(draws - 1)
                    );
                }
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}
