//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + (rng.next_u64() % span as u64) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `vec(element, len)` / `vec(element, lo..hi)` / `vec(element, lo..=hi)`:
/// a strategy for vectors whose length falls in the size range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
