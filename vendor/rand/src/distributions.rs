//! The standard distribution and uniform range sampling.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for
/// integers, uniform in `[0, 1)` for floats, a fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod uniform {
    //! Uniform sampling over ranges, mirroring `rand::distributions::uniform`.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized + PartialOrd + Copy {
        /// Uniform draw from `[lo, hi)`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// Uniform draw from `[lo, hi]`.
        fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty => $wide:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    // Multiply-shift rejection-free mapping (tiny bias
                    // of < 2^-64 per draw, irrelevant at these spans).
                    let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    lo.wrapping_add(v as $t)
                }
                #[inline]
                fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let v = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                    lo.wrapping_add(v as $t)
                }
            }
        )*};
    }
    uniform_int!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "gen_range: empty range");
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    let v = lo + unit * (hi - lo);
                    // Guard the open upper bound against rounding.
                    if v >= hi { <$t>::from_bits(hi.to_bits() - 1) } else { v }
                }
                #[inline]
                fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo <= hi, "gen_range: empty range");
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                    lo + unit * (hi - lo)
                }
            }
        )*};
    }
    uniform_float!(f32, f64);

    /// Range forms accepted by `Rng::gen_range`.
    pub trait SampleRange<T: SampleUniform> {
        /// Draws one uniform value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_closed(rng, *self.start(), *self.end())
        }
    }
}
