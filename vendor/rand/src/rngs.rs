//! Concrete generators. The workspace only uses [`StdRng`].

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256**.
///
/// The real `rand::rngs::StdRng` is ChaCha12; xoshiro256** is a much
/// smaller dependency-free generator with excellent statistical
/// quality (it passes BigCrush) and the same `SeedableRng` interface.
/// Streams are deterministic per seed but *different* from ChaCha12's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_does_not_stick_at_zero() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert!((0..8).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn from_seed_uses_all_bytes() {
        // xoshiro's first output depends only on s[1], so a change in
        // the last seed word takes a few steps to surface; compare a
        // short stream prefix rather than a single draw.
        let mut a = [1u8; 32];
        let b = [1u8; 32];
        a[31] = 2;
        let mut ra = StdRng::from_seed(a);
        let mut rb = StdRng::from_seed(b);
        let sa: Vec<u64> = (0..4).map(|_| ra.next_u64()).collect();
        let sb: Vec<u64> = (0..4).map(|_| rb.next_u64()).collect();
        assert_ne!(sa, sb);
    }
}
