//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access and
//! no vendored registry, so the real `rand` cannot be fetched. This
//! crate implements the *exact subset* of the `rand 0.8` API the
//! workspace uses — `Rng::{gen, gen_range, gen_bool, fill}`,
//! `SeedableRng::{from_seed, seed_from_u64}` and `rngs::StdRng` — with
//! a deterministic, high-quality xoshiro256** generator seeded through
//! SplitMix64 (the same seeding scheme the real `rand` documents for
//! `seed_from_u64`).
//!
//! The generated *streams* differ from the real `StdRng` (which is
//! ChaCha12), so code that bakes in golden values tied to ChaCha will
//! see different numbers; everything in this workspace asserts on
//! statistics and shapes, not on raw draws.

pub mod distributions;
pub mod rngs;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform bits.
///
/// Mirrors `rand_core::RngCore` closely enough for this workspace.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type for integers, uniform in `[0, 1)` for
    /// floats, fair coin for `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: distributions::Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        let v: f64 = self.gen();
        v < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through
    /// SplitMix64 exactly as the real `rand` documents.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from ambient entropy (the system
    /// clock and address-space layout). Only for convenience paths —
    /// everything reproducible in this workspace uses `seed_from_u64`.
    fn from_entropy() -> Self {
        use std::time::{SystemTime, UNIX_EPOCH};
        let t = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        let aslr = &t as *const _ as u64;
        Self::seed_from_u64(t ^ aslr.rotate_left(32))
    }
}

/// A fresh generator seeded from ambient entropy (free function, as in
/// `rand::thread_rng()` call sites that only need *some* generator).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_integer_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v: u8 = rng.gen_range(0..26);
            assert!(v < 26);
            seen_lo |= v == 0;
            seen_hi |= v == 25;
        }
        assert!(seen_lo && seen_hi, "range ends never sampled");
        for _ in 0..200 {
            let v = rng.gen_range(2..=8);
            assert!((2..=8).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 10_000.0;
        assert!((p - 0.25).abs() < 0.02, "p {p}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
