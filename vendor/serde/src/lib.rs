//! Offline stand-in for `serde`.
//!
//! The workspace's `serde` integration is entirely behind per-crate
//! off-by-default `serde` features (`cfg_attr(feature = "serde",
//! derive(serde::Serialize, serde::Deserialize))`). Those features
//! cannot be enabled against this stand-in (it ships no derive
//! macros); its only job is to let Cargo resolve the optional
//! dependency edge in an environment with no registry access.
//!
//! If a future PR needs real serialization, the experiment runners
//! already write their own JSON by hand (see the `perf_report`
//! example) — that path needs no serde at all.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
